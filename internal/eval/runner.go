package eval

import (
	"fmt"
	"math/rand"

	"vibguard/internal/attack"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/segment"
	"vibguard/internal/sensing"
)

// SpanProvider yields effective-phoneme spans for a sample. The oracle
// provider uses ground-truth alignments; the BRNN provider runs the
// learned detector of Section V-B on the VA recording.
type SpanProvider interface {
	SpansFor(s *Sample) ([]segment.Span, error)
}

// OracleProvider derives spans from the sample's ground-truth alignment.
type OracleProvider struct {
	// Selected is the barrier-effect-sensitive phoneme set.
	Selected map[string]bool
}

var _ SpanProvider = (*OracleProvider)(nil)

// SpansFor returns the aligned selected-phoneme spans, shifted by the
// recording's lead-in context.
func (p *OracleProvider) SpansFor(s *Sample) ([]segment.Span, error) {
	if s.Utterance == nil {
		return nil, fmt.Errorf("eval: sample has no utterance for oracle spans")
	}
	spans := segment.OracleSpans(s.Utterance, p.Selected)
	for i := range spans {
		spans[i].Start += s.LeadSamples
		spans[i].End += s.LeadSamples
	}
	return spans, nil
}

// BRNNProvider runs the trained phoneme detector on the VA recording.
// It is safe for concurrent SpansFor calls: the detector's model weights
// are read-only and its per-call inference scratch is pooled.
type BRNNProvider struct {
	Detector *segment.Detector
}

var _ SpanProvider = (*BRNNProvider)(nil)

// SpansFor detects effective phonemes in the VA recording.
func (p *BRNNProvider) SpansFor(s *Sample) ([]segment.Span, error) {
	frames, err := p.Detector.DetectFrames(s.VARec)
	if err != nil {
		return nil, err
	}
	return p.Detector.Spans(frames), nil
}

// Dataset is a collection of labeled samples.
type Dataset struct {
	// Legit holds the legitimate (no attack) samples.
	Legit []*Sample
	// Attacks maps each attack kind to its samples.
	Attacks map[attack.Kind][]*Sample
}

// DatasetConfig sizes a dataset build.
type DatasetConfig struct {
	// Participants in the voice pool (the paper recruits 20).
	Participants int
	// CommandsPerUser spoken by each legitimate participant.
	CommandsPerUser int
	// AttacksPerKind is the number of attack samples per attack type.
	AttacksPerKind int
	// Kinds restricts the attack kinds (nil means every kind, the paper's
	// four plus the adaptive-adversary extensions).
	Kinds []attack.Kind
	// Conditions to cycle through (nil means the default condition).
	Conditions []Condition
	// Seed drives all randomness.
	Seed int64
}

// DefaultDatasetConfig returns a medium-size configuration suitable for
// the figure reproductions.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		Participants:    20,
		CommandsPerUser: 5,
		AttacksPerKind:  60,
		Seed:            1,
	}
}

// BuildDataset generates a dataset.
func BuildDataset(cfg DatasetConfig) (*Dataset, error) {
	if cfg.Participants < 2 || cfg.CommandsPerUser <= 0 || cfg.AttacksPerKind < 0 {
		return nil, fmt.Errorf("eval: invalid dataset config %+v", cfg)
	}
	gen, err := NewGenerator(cfg.Participants, cfg.Seed)
	if err != nil {
		return nil, err
	}
	conditions := cfg.Conditions
	if len(conditions) == 0 {
		conditions = []Condition{DefaultCondition()}
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = attack.Kinds()
	}
	ds := &Dataset{Attacks: make(map[attack.Kind][]*Sample, len(kinds))}
	condIdx := 0
	nextCond := func() Condition {
		c := conditions[condIdx%len(conditions)]
		condIdx++
		return c
	}
	for v := 0; v < cfg.Participants; v++ {
		for c := 0; c < cfg.CommandsPerUser; c++ {
			s, err := gen.Legit(v, v*cfg.CommandsPerUser+c, nextCond())
			if err != nil {
				return nil, err
			}
			ds.Legit = append(ds.Legit, s)
		}
	}
	for _, kind := range kinds {
		for i := 0; i < cfg.AttacksPerKind; i++ {
			victim := i % cfg.Participants
			s, err := gen.Attack(kind, victim, i, nextCond())
			if err != nil {
				return nil, err
			}
			ds.Attacks[kind] = append(ds.Attacks[kind], s)
		}
	}
	return ds, nil
}

// scorerSpec captures everything needed to build one Defense instance for
// scoring: the parallel engine replays it once per worker, the serial
// Scorer once in total. The wearable is copied by value per build, so
// every Defense owns an independent device model.
type scorerSpec struct {
	method   detector.Method
	wearable *device.Wearable
	provider SpanProvider
	seed     int64
	mutate   func(*sensing.Config)
	noSync   bool
}

func (sp *scorerSpec) validate() error {
	if sp.wearable == nil && sp.method != detector.MethodAudio {
		return fmt.Errorf("eval: method %v needs a wearable", sp.method)
	}
	if sp.provider == nil && sp.method == detector.MethodFull {
		return fmt.Errorf("eval: full method needs a span provider")
	}
	return nil
}

// newDefense builds a fresh, independent Defense from the spec. Spans come
// from the per-sample SpanProvider at score time, so the Defense itself is
// configured without a segmenter.
func (sp *scorerSpec) newDefense() (*core.Defense, error) {
	var w *device.Wearable
	if sp.wearable != nil {
		clone := *sp.wearable // component structs are value types: deep enough
		w = &clone
	}
	cfg := core.DefaultConfig(w, nil)
	cfg.Method = sp.method
	if sp.mutate != nil {
		sp.mutate(&cfg.Sensing)
	}
	if sp.noSync {
		cfg.MaxSyncLagSeconds = 0
	}
	return core.NewDefense(cfg)
}

// SampleSeed derives the RNG seed of sample index from the scorer seed
// using a SplitMix64-style mix, so per-sample random streams are mutually
// decorrelated and — crucially — depend only on (seed, index), never on
// which worker scores the sample or in what order. This is what makes
// parallel scoring bit-identical to sequential scoring.
func SampleSeed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Scorer scores datasets with one detection method through the full
// defense pipeline (synchronization included), sequentially. Scores are
// bit-identical to ParallelScorer's for the same (seed, index) pairs.
type Scorer struct {
	spec    scorerSpec
	defense *core.Defense
}

// NewScorer builds a scorer for one method. The provider is required for
// MethodFull and ignored otherwise.
func NewScorer(method detector.Method, w *device.Wearable, provider SpanProvider, seed int64) (*Scorer, error) {
	return NewScorerWithSensing(method, w, provider, seed, nil)
}

// NewScorerWithSensing builds a scorer whose vibration-domain sensing
// configuration is modified by mutate (nil means defaults). Used by the
// ablation benchmarks.
func NewScorerWithSensing(method detector.Method, w *device.Wearable, provider SpanProvider, seed int64, mutate func(*sensing.Config)) (*Scorer, error) {
	spec := scorerSpec{method: method, wearable: w, provider: provider, seed: seed, mutate: mutate}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	defense, err := spec.newDefense()
	if err != nil {
		return nil, err
	}
	return &Scorer{spec: spec, defense: defense}, nil
}

// scoreSample runs the pipeline on one sample with the given rng,
// resolving spans through the per-sample provider for MethodFull.
func scoreSample(defense *core.Defense, spec *scorerSpec, s *Sample, rng *rand.Rand) (float64, error) {
	var spans []segment.Span
	if spec.method == detector.MethodFull {
		var err error
		spans, err = spec.provider.SpansFor(s)
		if err != nil {
			return 0, err
		}
	}
	return defense.ScoreWithSpans(s.VARec, s.WearRec, spans, rng)
}

// ScoreIndexed scores one sample as the index-th element of a dataset: the
// rng is freshly derived from (seed, index), so the result is independent
// of any other sample's scoring.
func (sc *Scorer) ScoreIndexed(s *Sample, index int) (float64, error) {
	rng := rand.New(rand.NewSource(SampleSeed(sc.spec.seed, index)))
	return scoreSample(sc.defense, &sc.spec, s, rng)
}

// Score runs the pipeline on one sample (as index 0).
func (sc *Scorer) Score(s *Sample) (float64, error) {
	return sc.ScoreIndexed(s, 0)
}

// ScoreAll scores a slice of samples sequentially.
func (sc *Scorer) ScoreAll(samples []*Sample) ([]float64, error) {
	out := make([]float64, 0, len(samples))
	for i, s := range samples {
		score, err := sc.ScoreIndexed(s, i)
		if err != nil {
			return nil, fmt.Errorf("eval: sample %d: %w", i, err)
		}
		out = append(out, score)
	}
	return out, nil
}

// EvaluateWithoutSync scores the dataset with the Eq. (5) synchronization
// disabled (zero maximum lag), quantifying how much the cross-correlation
// alignment contributes: the wearable's 50-150 ms network-delay offset is
// left in place.
func EvaluateWithoutSync(ds *Dataset, attackSamples []*Sample, w *device.Wearable, provider SpanProvider, seed int64) (Summary, error) {
	sc, err := NewParallelScorer(detector.MethodFull, w, provider, seed, WithoutSync())
	if err != nil {
		return Summary{}, err
	}
	legit, err := sc.ScoreAll(ds.Legit)
	if err != nil {
		return Summary{}, err
	}
	attacks, err := sc.ScoreAll(attackSamples)
	if err != nil {
		return Summary{}, err
	}
	return Summarize("no-sync ablation", legit, attacks)
}

// MethodArm names the three detector arms of every figure, in the order
// the paper plots them.
func MethodArms() []detector.Method {
	return []detector.Method{detector.MethodAudio, detector.MethodVibration, detector.MethodFull}
}

// EvaluateArms scores the dataset's legit samples and the given attack
// samples with all three methods and returns one summary per arm. Scoring
// runs on the parallel engine; results are identical to the sequential
// Scorer's for the same seed.
func EvaluateArms(ds *Dataset, attackSamples []*Sample, w *device.Wearable, provider SpanProvider, seed int64) ([]Summary, error) {
	summaries := make([]Summary, 0, 3)
	for _, method := range MethodArms() {
		sc, err := NewParallelScorer(method, w, provider, seed)
		if err != nil {
			return nil, err
		}
		legit, err := sc.ScoreAll(ds.Legit)
		if err != nil {
			return nil, err
		}
		attacks, err := sc.ScoreAll(attackSamples)
		if err != nil {
			return nil, err
		}
		s, err := Summarize(method.String(), legit, attacks)
		if err != nil {
			return nil, err
		}
		summaries = append(summaries, s)
	}
	return summaries, nil
}
