package eval

import (
	"fmt"
	"math"
	"math/rand"

	"vibguard/internal/acoustics"
	"vibguard/internal/attack"
	"vibguard/internal/brnn"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
)

// StandardConditions returns the cross product of the paper's experimental
// settings: four rooms x three user distances x three attack volumes, with
// user speaking levels cycling through 65/70/75 dB (Section VII-A).
func StandardConditions() []Condition {
	var out []Condition
	userSPLs := []float64{65, 70, 75}
	i := 0
	for _, room := range acoustics.Rooms() {
		for _, dist := range []float64{1, 2, 3} {
			for _, aspl := range []float64{65, 75, 85} {
				out = append(out, Condition{
					Room: room, UserToVAM: dist, BarrierToVAM: 2, BarrierToWearableM: 2,
					UserSPL: userSPLs[i%3], AttackSPL: aspl,
				})
				i++
			}
		}
	}
	return out
}

// SpectrumComparison holds the averaged spectra of one phoneme before and
// after passing a barrier (Figs. 3 and 4).
type SpectrumComparison struct {
	// Symbol is the phoneme.
	Symbol string
	// Freqs are the bin center frequencies in Hz.
	Freqs []float64
	// Before and After are the average FFT magnitudes per bin without and
	// with the barrier.
	Before, After []float64
}

// Figure3 reproduces the audio-domain barrier-effect demonstration: the
// average FFT magnitude of phoneme sounds before and after passing the
// glass window (the paper shows /ae/ and /v/; 100 segments from ten
// speakers at 75 dB).
func Figure3(symbols []string, samplesPerSymbol int, seed int64) ([]SpectrumComparison, error) {
	if samplesPerSymbol <= 0 {
		return nil, fmt.Errorf("eval: samples %d must be positive", samplesPerSymbol)
	}
	voices := phoneme.NewStudioVoicePool(10, seed)
	barrier := acoustics.GlassWindow
	const fftSize = 4096
	const maxFreq = 3000.0
	bins := dsp.FrequencyBin(maxFreq, fftSize, phoneme.SampleRate) + 1
	out := make([]SpectrumComparison, 0, len(symbols))
	for _, sym := range symbols {
		cmp := SpectrumComparison{
			Symbol: sym,
			Freqs:  make([]float64, bins),
			Before: make([]float64, bins),
			After:  make([]float64, bins),
		}
		for k := 0; k < bins; k++ {
			cmp.Freqs[k] = dsp.BinFrequency(k, fftSize, phoneme.SampleRate)
		}
		count := 0
		for i := 0; i < samplesPerSymbol; i++ {
			voice := voices[i%len(voices)]
			voice.Seed = seed + int64(i)*101
			synth, err := phoneme.NewSynthesizer(voice)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			seg, err := synth.PhonemeDur(sym, float64(fftSize)/phoneme.SampleRate)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			calibrated, err := dsp.NormalizeRMS(seg, dsp.SPLToAmplitude(75))
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			before := dsp.MagnitudeSpectrum(calibrated[:fftSize])
			after := dsp.MagnitudeSpectrum(barrier.Apply(calibrated, phoneme.SampleRate)[:fftSize])
			for k := 0; k < bins; k++ {
				cmp.Before[k] += before[k]
				cmp.After[k] += after[k]
			}
			count++
		}
		inv := 1 / float64(count)
		for k := 0; k < bins; k++ {
			cmp.Before[k] *= inv
			cmp.After[k] *= inv
		}
		out = append(out, cmp)
	}
	return out, nil
}

// Figure4 reproduces the vibration-domain version of the comparison: the
// average FFT magnitude of the wearable's accelerometer captures of the
// same phoneme sounds before and after the barrier.
func Figure4(symbols []string, samplesPerSymbol int, seed int64) ([]SpectrumComparison, error) {
	if samplesPerSymbol <= 0 {
		return nil, fmt.Errorf("eval: samples %d must be positive", samplesPerSymbol)
	}
	voices := phoneme.NewStudioVoicePool(10, seed)
	barrier := acoustics.GlassWindow
	w := device.NewFossilGen5()
	rng := rand.New(rand.NewSource(seed))
	const fftSize = 64
	bins := fftSize/2 + 1
	out := make([]SpectrumComparison, 0, len(symbols))
	for _, sym := range symbols {
		cmp := SpectrumComparison{
			Symbol: sym,
			Freqs:  make([]float64, bins),
			Before: make([]float64, bins),
			After:  make([]float64, bins),
		}
		for k := 0; k < bins; k++ {
			cmp.Freqs[k] = dsp.BinFrequency(k, fftSize, device.AccelSampleRate)
		}
		count := 0
		for i := 0; i < samplesPerSymbol; i++ {
			voice := voices[i%len(voices)]
			voice.Seed = seed + int64(i)*131
			synth, err := phoneme.NewSynthesizer(voice)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			seg, err := synth.PhonemeDur(sym, 0.3)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			calibrated, err := dsp.NormalizeRMS(seg, dsp.SPLToAmplitude(75))
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			direct := acoustics.Propagate(calibrated, 2)
			thru := acoustics.Propagate(barrier.Apply(calibrated, phoneme.SampleRate), 2)
			vibBefore, err := w.SenseVibration(direct, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			vibAfter, err := w.SenseVibration(thru, rng)
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			specB, err := dsp.STFT(vibBefore, dsp.STFTConfig{FFTSize: fftSize, HopSize: 32, SampleRate: device.AccelSampleRate})
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			specA, err := dsp.STFT(vibAfter, dsp.STFTConfig{FFTSize: fftSize, HopSize: 32, SampleRate: device.AccelSampleRate})
			if err != nil {
				return nil, fmt.Errorf("eval: %w", err)
			}
			addMeanMagnitude(cmp.Before, specB)
			addMeanMagnitude(cmp.After, specA)
			count++
		}
		inv := 1 / float64(count)
		for k := 0; k < bins; k++ {
			cmp.Before[k] *= inv
			cmp.After[k] *= inv
		}
		out = append(out, cmp)
	}
	return out, nil
}

func addMeanMagnitude(acc []float64, spec *dsp.Spectrogram) {
	if spec.NumFrames() == 0 {
		return
	}
	for k := 0; k < spec.NumBins() && k < len(acc); k++ {
		sum := 0.0
		for _, row := range spec.Power {
			sum += row[k]
		}
		mean := sum / float64(spec.NumFrames())
		if mean > 0 {
			acc[k] += math.Sqrt(mean)
		}
	}
}

// Figure7 reproduces the accelerometer chirp-response measurement: the
// power per vibration-domain frequency for a 500-2500 Hz audio chirp,
// showing the 0-5 Hz hypersensitivity artifact.
func Figure7(seed int64) (freqs, power []float64, err error) {
	accel := device.NewAccelerometer()
	rng := rand.New(rand.NewSource(seed))
	spec, err := accel.ChirpResponse(500, 2500, 4.0, phoneme.SampleRate, rng)
	if err != nil {
		return nil, nil, err
	}
	n := (len(spec) - 1) * 2
	freqs = make([]float64, len(spec))
	for k := range spec {
		freqs[k] = dsp.BinFrequency(k, n, device.AccelSampleRate)
	}
	return freqs, spec, nil
}

// TableIEntry is one cell of the Table I attack study.
type TableIEntry struct {
	// Device is the VA product name.
	Device string
	// Barrier names the barrier ("glass window" / "wooden door").
	Barrier string
	// Attack is the attack kind.
	Attack attack.Kind
	// SPL is the attack playback level.
	SPL float64
	// Successes out of Attempts wake attempts.
	Successes, Attempts int
	// Tested is false for the "-" cells (Siri's speaker verification
	// rejects random and synthesis attacks outright).
	Tested bool
}

// TableI reproduces the thru-barrier attack study: wake words replayed
// 10 cm behind each barrier at 65 and 75 dB against the four VA devices,
// ten attempts per cell.
func TableI(attempts int, seed int64) ([]TableIEntry, error) {
	if attempts <= 0 {
		return nil, fmt.Errorf("eval: attempts %d must be positive", attempts)
	}
	rng := rand.New(rand.NewSource(seed))
	voices := phoneme.NewVoicePool(4, seed+9)
	attacker := attack.NewAttacker(seed + 17)
	rooms := map[string]acoustics.Room{}
	roomA, err := acoustics.RoomByName("A") // glass window
	if err != nil {
		return nil, err
	}
	roomB, err := acoustics.RoomByName("B") // wooden door
	if err != nil {
		return nil, err
	}
	rooms[roomA.Barrier.Name] = roomA
	rooms[roomB.Barrier.Name] = roomB

	wakeWords := map[string]phoneme.Command{
		"Google Home": phoneme.WakeWords()[0],
		"Alexa Echo":  phoneme.WakeWords()[1],
		"MacBook Pro": phoneme.WakeWords()[2],
		"iPhone":      phoneme.WakeWords()[2],
	}
	var out []TableIEntry
	for _, barrierName := range []string{"glass window", "wooden door"} {
		room := rooms[barrierName]
		for _, dev := range device.AllVADevices() {
			cmd := wakeWords[dev.Name]
			for _, kind := range []attack.Kind{attack.Random, attack.Replay, attack.Synthesis} {
				for _, spl := range []float64{65, 75} {
					entry := TableIEntry{
						Device: dev.Name, Barrier: barrierName,
						Attack: kind, SPL: spl, Attempts: attempts,
						Tested: !(dev.SpeakerVerification && kind != attack.Replay),
					}
					if entry.Tested {
						for i := 0; i < attempts; i++ {
							ok, err := tableIAttempt(dev, room, cmd, kind, spl, voices, attacker, rng)
							if err != nil {
								return nil, err
							}
							if ok {
								entry.Successes++
							}
						}
					}
					out = append(out, entry)
				}
			}
		}
	}
	// Hidden voice attack on Google Home only (the paper had hidden
	// commands only for "OK Google").
	gh := device.NewGoogleHome()
	for _, barrierName := range []string{"glass window", "wooden door"} {
		room := rooms[barrierName]
		for _, spl := range []float64{65, 75} {
			entry := TableIEntry{
				Device: gh.Name, Barrier: barrierName,
				Attack: attack.HiddenVoice, SPL: spl, Attempts: attempts, Tested: true,
			}
			for i := 0; i < attempts; i++ {
				ok, err := tableIAttempt(gh, room, wakeWords[gh.Name], attack.HiddenVoice, spl, voices, attacker, rng)
				if err != nil {
					return nil, err
				}
				if ok {
					entry.Successes++
				}
			}
			out = append(out, entry)
		}
	}
	return out, nil
}

func tableIAttempt(dev *device.VADevice, room acoustics.Room, cmd phoneme.Command,
	kind attack.Kind, spl float64, voices []phoneme.VoiceProfile,
	attacker *attack.Attacker, rng *rand.Rand) (bool, error) {

	victim := voices[0]
	victim.Seed = rng.Int63()
	synth, err := phoneme.NewSynthesizer(victim)
	if err != nil {
		return false, err
	}
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return false, err
	}
	var audio []float64
	switch kind {
	case attack.Random:
		adversary := voices[1+rng.Intn(len(voices)-1)]
		adversary.Seed = rng.Int63()
		audio, err = attacker.RandomAttack(adversary, cmd)
	case attack.Replay:
		audio, err = attacker.ReplayAttack(utt.Samples)
	case attack.Synthesis:
		audio, err = attacker.SynthesisAttack([][]float64{utt.Samples}, cmd)
	case attack.HiddenVoice:
		audio, err = attacker.HiddenVoiceAttack(utt.Samples)
	default:
		return false, fmt.Errorf("eval: unknown attack %d", kind)
	}
	if err != nil {
		return false, err
	}
	// Pad with context so the recording has a noise floor to score
	// against, as a real always-listening device would.
	lead := int(0.3 * phoneme.SampleRate)
	padded := dsp.Concat(make([]float64, lead), audio, make([]float64, lead))
	pressure, err := room.Transmit(padded, acoustics.PathConfig{
		SourceSPL:      spl,
		DistanceM:      loudspeakerToBarrierM + 2,
		ThroughBarrier: true,
		SampleRate:     phoneme.SampleRate,
	}, rng)
	if err != nil {
		return false, err
	}
	rec, err := dev.Record(pressure, rng)
	if err != nil {
		return false, err
	}
	return dev.TryWake(rec, rng), nil
}

// DetectionAccuracy reproduces the phoneme-detection evaluation of Section
// V-B: a BRNN is trained on studio utterances, then frame accuracy is
// measured on held-out recordings without and with the barrier (the paper
// reports 94% and 91%).
func DetectionAccuracy(hidden, trainVoices, trainCommands, epochs int, seed int64) (direct, thruBarrier float64, err error) {
	sel := selection.CanonicalSelected()
	det, err := segment.NewDetector(sel, brnn.Config{InputDim: 14, HiddenDim: hidden, NumClasses: 2, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	voices := phoneme.NewStudioVoicePool(trainVoices+2, seed+5)
	cmds := phoneme.Commands()
	if trainCommands > len(cmds) {
		trainCommands = len(cmds)
	}
	rng := rand.New(rand.NewSource(seed + 77))
	room, err := acoustics.RoomByName("A")
	if err != nil {
		return 0, 0, err
	}
	mic := device.NewMicrophone(16000)
	// Training data goes through the same recording chain as deployment
	// (the paper trains on broadband recordings of the corpus, and the VA
	// reuses its speech pipeline's preprocessed audio).
	var train []*phoneme.Utterance
	for _, v := range voices[:trainVoices] {
		synth, err := phoneme.NewSynthesizer(v)
		if err != nil {
			return 0, 0, err
		}
		for _, cmd := range cmds[:trainCommands] {
			u, err := synth.Synthesize(cmd)
			if err != nil {
				return 0, 0, err
			}
			p, err := room.Transmit(u.Samples, acoustics.PathConfig{SourceSPL: 75, DistanceM: 2, SampleRate: 16000}, rng)
			if err != nil {
				return 0, 0, err
			}
			rec, err := mic.Record(p, rng)
			if err != nil {
				return 0, 0, err
			}
			train = append(train, &phoneme.Utterance{Samples: rec, Alignment: u.Alignment, Command: u.Command, Speaker: u.Speaker})
		}
	}
	if _, err := det.Train(train, brnn.TrainConfig{Epochs: epochs, LearningRate: 0.006, ClipNorm: 5, Seed: seed}); err != nil {
		return 0, 0, err
	}
	// Held-out voices, recorded through the same chain.
	var directUtts, barrierUtts []*phoneme.Utterance
	for _, v := range voices[trainVoices:] {
		synth, err := phoneme.NewSynthesizer(v)
		if err != nil {
			return 0, 0, err
		}
		for _, cmd := range cmds[:trainCommands] {
			u, err := synth.Synthesize(cmd)
			if err != nil {
				return 0, 0, err
			}
			pDirect, err := room.Transmit(u.Samples, acoustics.PathConfig{SourceSPL: 75, DistanceM: 2, SampleRate: 16000}, rng)
			if err != nil {
				return 0, 0, err
			}
			recDirect, err := mic.Record(pDirect, rng)
			if err != nil {
				return 0, 0, err
			}
			pThru, err := room.Transmit(u.Samples, acoustics.PathConfig{SourceSPL: 85, DistanceM: 2, ThroughBarrier: true, SampleRate: 16000}, rng)
			if err != nil {
				return 0, 0, err
			}
			recThru, err := mic.Record(pThru, rng)
			if err != nil {
				return 0, 0, err
			}
			directUtts = append(directUtts, &phoneme.Utterance{Samples: recDirect, Alignment: u.Alignment, Command: u.Command, Speaker: u.Speaker})
			barrierUtts = append(barrierUtts, &phoneme.Utterance{Samples: recThru, Alignment: u.Alignment, Command: u.Command, Speaker: u.Speaker})
		}
	}
	direct, err = det.FrameAccuracy(directUtts)
	if err != nil {
		return 0, 0, err
	}
	thruBarrier, err = det.FrameAccuracy(barrierUtts)
	if err != nil {
		return 0, 0, err
	}
	return direct, thruBarrier, nil
}

// FigureConfig sizes the ROC experiments (Figs. 9-11).
type FigureConfig struct {
	// Participants, CommandsPerUser, AttacksPerKind size the dataset.
	Participants, CommandsPerUser, AttacksPerKind int
	// Seed drives all randomness.
	Seed int64
}

// DefaultFigureConfig returns the dataset sizing used by the benchmark
// harness. The paper's datasets are larger (26400 random-attack samples);
// this sizing keeps one figure under a couple of minutes while holding the
// metric estimates stable.
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{Participants: 12, CommandsPerUser: 6, AttacksPerKind: 60, Seed: 1}
}

// Figure9 reproduces the ROC comparison of one clear-voice attack (Figs.
// 9a-9c) or the hidden voice attack (Fig. 10): three summaries in the
// order audio baseline, vibration baseline, full system.
func Figure9(kind attack.Kind, cfg FigureConfig) ([]Summary, error) {
	ds, err := BuildDataset(DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Kinds:           []attack.Kind{kind},
		Conditions:      StandardConditions(),
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	return EvaluateArms(ds, ds.Attacks[kind], device.NewFossilGen5(), provider, cfg.Seed+1000)
}

// EERCell is one bar of a Fig. 11 panel.
type EERCell struct {
	// Label names the swept setting (volume, material, distance, room).
	Label string
	// Method is the detector arm.
	Method detector.Method
	// Attack is the attack kind.
	Attack attack.Kind
	// EER is the measured equal error rate.
	EER float64
}

// Figure11a sweeps the replay-attack volume (65/75/85 dB) for all three
// detector arms.
func Figure11a(cfg FigureConfig) ([]EERCell, error) {
	var out []EERCell
	for _, spl := range []float64{65, 75, 85} {
		conds := conditionsWithAttackSPL(spl)
		ds, err := BuildDataset(DatasetConfig{
			Participants:    cfg.Participants,
			CommandsPerUser: cfg.CommandsPerUser,
			AttacksPerKind:  cfg.AttacksPerKind,
			Kinds:           []attack.Kind{attack.Replay},
			Conditions:      conds,
			Seed:            cfg.Seed + int64(spl),
		})
		if err != nil {
			return nil, err
		}
		provider := &OracleProvider{Selected: selection.CanonicalSelected()}
		sums, err := EvaluateArms(ds, ds.Attacks[attack.Replay], device.NewFossilGen5(), provider, cfg.Seed+2000)
		if err != nil {
			return nil, err
		}
		for i, m := range MethodArms() {
			out = append(out, EERCell{
				Label: fmt.Sprintf("%.0fdB", spl), Method: m,
				Attack: attack.Replay, EER: sums[i].EER,
			})
		}
	}
	return out, nil
}

func conditionsWithAttackSPL(spl float64) []Condition {
	conds := StandardConditions()
	out := conds[:0]
	for _, c := range conds {
		if c.AttackSPL == spl {
			out = append(out, c)
		}
	}
	return out
}

// sweepEERs runs the full system over each condition subset and attack
// kind of the paper's threat model, producing one EER cell per (label,
// kind). The figures reproduce the paper, so the sweep stays on
// PaperKinds; the extension kinds are measured by AttackCorpus.
func sweepEERs(labels []string, condSets [][]Condition, cfg FigureConfig) ([]EERCell, error) {
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	var out []EERCell
	for li, conds := range condSets {
		ds, err := BuildDataset(DatasetConfig{
			Participants:    cfg.Participants,
			CommandsPerUser: cfg.CommandsPerUser,
			AttacksPerKind:  cfg.AttacksPerKind,
			Kinds:           attack.PaperKinds(),
			Conditions:      conds,
			Seed:            cfg.Seed + int64(li)*37,
		})
		if err != nil {
			return nil, err
		}
		sc, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, cfg.Seed+3000)
		if err != nil {
			return nil, err
		}
		legit, err := sc.ScoreAll(ds.Legit)
		if err != nil {
			return nil, err
		}
		for _, kind := range attack.PaperKinds() {
			attacks, err := sc.ScoreAll(ds.Attacks[kind])
			if err != nil {
				return nil, err
			}
			sum, err := Summarize(kind.String(), legit, attacks)
			if err != nil {
				return nil, err
			}
			out = append(out, EERCell{
				Label: labels[li], Method: detector.MethodFull,
				Attack: kind, EER: sum.EER,
			})
		}
	}
	return out, nil
}

// Figure11b compares the full system's EER across barrier materials (wood
// vs glass rooms) for all four attacks.
func Figure11b(cfg FigureConfig) ([]EERCell, error) {
	var wood, glass []Condition
	for _, c := range StandardConditions() {
		if c.Room.Barrier.Material == acoustics.Wood {
			wood = append(wood, c)
		} else {
			glass = append(glass, c)
		}
	}
	return sweepEERs([]string{"Wood", "Glass"}, [][]Condition{wood, glass}, cfg)
}

// Figure11c sweeps the barrier-to-VA distance (3/4/5 m) with the
// barrier-to-wearable distance fixed at 2 m, for all four attacks.
func Figure11c(cfg FigureConfig) ([]EERCell, error) {
	labels := []string{"3m", "4m", "5m"}
	var sets [][]Condition
	for _, d := range []float64{3, 4, 5} {
		var conds []Condition
		for _, c := range StandardConditions() {
			c.BarrierToVAM = d
			c.UserToVAM = d - 1 // the user stands between barrier and VA
			conds = append(conds, c)
		}
		sets = append(sets, conds)
	}
	return sweepEERs(labels, sets, cfg)
}

// Figure11d compares the full system's EER across the four rooms for all
// four attacks.
func Figure11d(cfg FigureConfig) ([]EERCell, error) {
	labels := []string{"Room A", "Room B", "Room C", "Room D"}
	var sets [][]Condition
	for _, room := range acoustics.Rooms() {
		var conds []Condition
		for _, c := range StandardConditions() {
			if c.Room.Name == room.Name {
				conds = append(conds, c)
			}
		}
		sets = append(sets, conds)
	}
	return sweepEERs(labels, sets, cfg)
}

// WearableCell reports the full system's performance on one wearable
// model (the paper evaluates both a Fossil Gen 5 and a Moto 360 2020).
type WearableCell struct {
	// Wearable is the device name.
	Wearable string
	// Summary holds AUC/EER of the full system under replay attack.
	Summary Summary
}

// WearableComparison runs the full system with each smartwatch model, an
// extension of the device study of Section VII-A.
func WearableComparison(cfg FigureConfig) ([]WearableCell, error) {
	ds, err := BuildDataset(DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Kinds:           []attack.Kind{attack.Replay},
		Conditions:      StandardConditions(),
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	var out []WearableCell
	for _, w := range []*device.Wearable{device.NewFossilGen5(), device.NewMoto360()} {
		sc, err := NewParallelScorer(detector.MethodFull, w, provider, cfg.Seed+4000)
		if err != nil {
			return nil, err
		}
		legit, err := sc.ScoreAll(ds.Legit)
		if err != nil {
			return nil, err
		}
		attacks, err := sc.ScoreAll(ds.Attacks[attack.Replay])
		if err != nil {
			return nil, err
		}
		sum, err := Summarize(w.Name, legit, attacks)
		if err != nil {
			return nil, err
		}
		out = append(out, WearableCell{Wearable: w.Name, Summary: sum})
	}
	return out, nil
}

// AttackCorpusRow is one row of the per-attack defense report: the full
// system's EER/AUC against one attack kind, with the holds/degrades/breaks
// verdict.
type AttackCorpusRow struct {
	// Kind is the attack.
	Kind attack.Kind
	// EER and AUC are the full system's metrics against this kind.
	EER, AUC float64
	// Verdict is VerdictFor(EER).
	Verdict string
}

// Verdict thresholds: the full system's EER against every paper attack
// sits near 0.11 on the benchmark datasets, so 0.15 bounds the normal
// operating range and 0.35 marks the approach to coin-flip performance.
const (
	verdictHoldsMaxEER    = 0.15
	verdictDegradesMaxEER = 0.35
)

// VerdictFor classifies the defense's standing against an attack kind
// from its full-system EER: "holds" while detection stays inside the
// paper-kind operating range, "degrades" when it is measurably worse but
// still clearly better than chance, and "breaks" when it approaches (or
// passes) coin-flip performance.
func VerdictFor(eer float64) string {
	switch {
	case eer <= verdictHoldsMaxEER:
		return "holds"
	case eer <= verdictDegradesMaxEER:
		return "degrades"
	default:
		return "breaks"
	}
}

// AttackCorpus measures the full system against every attack kind —
// the paper's four plus the adaptive-adversary extensions — on one
// condition-swept dataset, and attaches the holds/degrades/breaks verdict
// per kind. EXPERIMENTS.md records the output.
func AttackCorpus(cfg FigureConfig) ([]AttackCorpusRow, error) {
	ds, err := BuildDataset(DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Conditions:      StandardConditions(),
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	sc, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, cfg.Seed+6000)
	if err != nil {
		return nil, err
	}
	legit, err := sc.ScoreAll(ds.Legit)
	if err != nil {
		return nil, err
	}
	var out []AttackCorpusRow
	for _, kind := range attack.Kinds() {
		attacks, err := sc.ScoreAll(ds.Attacks[kind])
		if err != nil {
			return nil, err
		}
		sum, err := Summarize(kind.String(), legit, attacks)
		if err != nil {
			return nil, err
		}
		out = append(out, AttackCorpusRow{
			Kind: kind, EER: sum.EER, AUC: sum.AUC, Verdict: VerdictFor(sum.EER),
		})
	}
	return out, nil
}

// MotionCell reports the full system's EER with wearer body motion of a
// given amplitude, validating the sub-5Hz crop's interference rejection
// (Section VI-B).
type MotionCell struct {
	// MotionAmp is the body-motion amplitude injected into the
	// accelerometer (0 = still arm).
	MotionAmp float64
	// Summary holds AUC/EER of the full system under replay attack.
	Summary Summary
}

// BodyMotionRobustness sweeps wearer body-motion interference levels.
func BodyMotionRobustness(cfg FigureConfig, amps []float64) ([]MotionCell, error) {
	ds, err := BuildDataset(DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Kinds:           []attack.Kind{attack.Replay},
		Conditions:      StandardConditions(),
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	var out []MotionCell
	for _, amp := range amps {
		w := device.NewFossilGen5()
		w.Accel.BodyMotionAmp = amp
		sc, err := NewParallelScorer(detector.MethodFull, w, provider, cfg.Seed+5000)
		if err != nil {
			return nil, err
		}
		legit, err := sc.ScoreAll(ds.Legit)
		if err != nil {
			return nil, err
		}
		attacks, err := sc.ScoreAll(ds.Attacks[attack.Replay])
		if err != nil {
			return nil, err
		}
		sum, err := Summarize(fmt.Sprintf("motion %.2f", amp), legit, attacks)
		if err != nil {
			return nil, err
		}
		out = append(out, MotionCell{MotionAmp: amp, Summary: sum})
	}
	return out, nil
}
