// Package eval provides the evaluation harness of Section VII: detection
// metrics (TDR, FDR, EER, AUC, ROC curves), dataset generators that
// reproduce the paper's experimental conditions (20 participants, 20
// commands, four rooms, three attack volumes, three distances), and
// experiment runners for every table and figure.
package eval

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of the receiver operating
// characteristic.
type ROCPoint struct {
	// Threshold is the score threshold: scores below it are flagged as
	// attacks.
	Threshold float64
	// TDR is the true detection rate: the fraction of attacks correctly
	// flagged.
	TDR float64
	// FDR is the false detection rate: the fraction of legitimate
	// commands wrongly flagged.
	FDR float64
}

// ROC is a full receiver operating characteristic curve.
type ROC struct {
	Points []ROCPoint
}

// ComputeROC sweeps the decision threshold over [-1, 1] in steps of 0.01
// (the paper sweeps its normalized score in steps of 0.01) and returns the
// resulting curve. Legitimate commands should score high and attacks low.
func ComputeROC(legitScores, attackScores []float64) (*ROC, error) {
	if len(legitScores) == 0 || len(attackScores) == 0 {
		return nil, fmt.Errorf("eval: need both legitimate (%d) and attack (%d) scores",
			len(legitScores), len(attackScores))
	}
	roc := &ROC{Points: make([]ROCPoint, 0, 201)}
	for i := 0; i <= 200; i++ {
		// float64(i-100)/100 lands every grid point on the nearest float64
		// to an exact hundredth; the additive form -1 + i*0.01 accumulates
		// rounding error, drifting thresholds off-grid so scores exactly at
		// a hundredth (e.g. a perfect Pearson score of 1.0) fall on the
		// wrong side of the strict < comparison.
		th := float64(i-100) / 100
		roc.Points = append(roc.Points, ROCPoint{
			Threshold: th,
			TDR:       fractionBelow(attackScores, th),
			FDR:       fractionBelow(legitScores, th),
		})
	}
	return roc, nil
}

func fractionBelow(scores []float64, th float64) float64 {
	n := 0
	for _, s := range scores {
		if s < th {
			n++
		}
	}
	return float64(n) / float64(len(scores))
}

// AUC computes the area under the ROC curve (TDR over FDR) by the
// trapezoidal rule. 1.0 is a perfect detector; 0.5 is chance.
func (r *ROC) AUC() float64 {
	pts := make([]ROCPoint, len(r.Points))
	copy(pts, r.Points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FDR != pts[j].FDR {
			return pts[i].FDR < pts[j].FDR
		}
		return pts[i].TDR < pts[j].TDR
	})
	area := 0.0
	prevF, prevT := 0.0, 0.0
	for _, p := range pts {
		area += (p.FDR - prevF) * (p.TDR + prevT) / 2
		prevF, prevT = p.FDR, p.TDR
	}
	// Close the curve to (1, 1).
	area += (1 - prevF) * (1 + prevT) / 2
	return area
}

// EER returns the equal error rate: the error at the threshold where the
// false detection rate equals the miss rate (1 - TDR), found by scanning
// the curve for the minimum gap.
func (r *ROC) EER() float64 {
	best := 1.0
	bestGap := 2.0
	for _, p := range r.Points {
		miss := 1 - p.TDR
		gap := abs(p.FDR - miss)
		if gap < bestGap {
			bestGap = gap
			best = (p.FDR + miss) / 2
		}
	}
	return best
}

// EERThreshold returns the threshold at the equal-error operating point.
func (r *ROC) EERThreshold() float64 {
	bestTh := 0.0
	bestGap := 2.0
	for _, p := range r.Points {
		gap := abs(p.FDR - (1 - p.TDR))
		if gap < bestGap {
			bestGap = gap
			bestTh = p.Threshold
		}
	}
	return bestTh
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Summary bundles the headline metrics of one experiment arm.
type Summary struct {
	// Name labels the arm (e.g. "our defense system").
	Name string
	// AUC and EER are the headline metrics of Figs. 9-10.
	AUC, EER float64
	// EERThreshold is the operating threshold at the equal-error point.
	EERThreshold float64
	// LegitCount and AttackCount are the dataset sizes.
	LegitCount, AttackCount int
}

// Summarize computes the headline metrics from score sets.
func Summarize(name string, legitScores, attackScores []float64) (Summary, error) {
	roc, err := ComputeROC(legitScores, attackScores)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Name:         name,
		AUC:          roc.AUC(),
		EER:          roc.EER(),
		EERThreshold: roc.EERThreshold(),
		LegitCount:   len(legitScores),
		AttackCount:  len(attackScores),
	}, nil
}
