package eval

import (
	"runtime"
	"sync"
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/selection"
	"vibguard/internal/sensing"
)

// mixedSamples flattens a small dataset into one slice covering both
// classes, so equivalence checks exercise legit and attack paths.
func mixedSamples(t *testing.T) []*Sample {
	t.Helper()
	ds := smallDataset(t)
	out := append([]*Sample{}, ds.Legit...)
	out = append(out, ds.Attacks[attack.Replay]...)
	out = append(out, ds.Attacks[attack.HiddenVoice]...)
	return out
}

// TestParallelMatchesSequential is the determinism proof the engine is
// built around: the parallel score vector must be bit-identical to the
// sequential Scorer's for every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	samples := mixedSamples(t)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	w := device.NewFossilGen5()
	const seed = 7

	serial, err := NewScorer(detector.MethodFull, w, provider, seed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.ScoreAll(samples)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		ps, err := NewParallelScorer(detector.MethodFull, w, provider, seed, Workers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if ps.Workers() != workers {
			t.Fatalf("workers = %d, want %d", ps.Workers(), workers)
		}
		got, err := ps.ScoreAll(samples)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d workers: %d scores, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%d workers: sample %d score %v != sequential %v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestParallelEquivalenceAllMethods repeats the determinism check for the
// two baseline arms, which share the engine but skip the span provider.
func TestParallelEquivalenceAllMethods(t *testing.T) {
	samples := mixedSamples(t)
	w := device.NewFossilGen5()
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	for _, method := range MethodArms() {
		serial, err := NewScorer(method, w, provider, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serial.ScoreAll(samples)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := NewParallelScorer(method, w, provider, 3, Workers(4))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ps.ScoreAll(samples)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: sample %d parallel %v != sequential %v", method, i, got[i], want[i])
			}
		}
	}
}

// TestParallelOverlappingSlices drives one ParallelScorer from several
// goroutines over overlapping sample slices at once. Run under -race this
// proves the engine shares no mutable state across ScoreAll calls.
func TestParallelOverlappingSlices(t *testing.T) {
	samples := mixedSamples(t)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	ps, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 11, Workers(4))
	if err != nil {
		t.Fatal(err)
	}
	slices := [][]*Sample{
		samples,
		samples[:len(samples)/2+2],
		samples[len(samples)/3:],
	}
	results := make([][]float64, len(slices))
	var wg sync.WaitGroup
	errs := make([]error, len(slices))
	for i, sl := range slices {
		wg.Add(1)
		go func(i int, sl []*Sample) {
			defer wg.Done()
			results[i], errs[i] = ps.ScoreAll(sl)
		}(i, sl)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		if len(results[i]) != len(slices[i]) {
			t.Fatalf("slice %d: %d scores for %d samples", i, len(results[i]), len(slices[i]))
		}
	}
	// Index-determinism across overlapping calls: position i of any call
	// must match position i of the full slice's result wherever the same
	// sample sits at the same index.
	for i := range slices[1] {
		if results[1][i] != results[0][i] {
			t.Errorf("prefix slice diverged at %d: %v != %v", i, results[1][i], results[0][i])
		}
	}
}

// TestParallelScorerErrors covers construction validation and in-flight
// scoring errors (a MethodFull provider failure must surface, not hang).
func TestParallelScorerErrors(t *testing.T) {
	if _, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), nil, 1); err == nil {
		t.Error("full method without provider should error")
	}
	if _, err := NewParallelScorer(detector.MethodVibration, nil, nil, 1); err == nil {
		t.Error("vibration method without wearable should error")
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	ps, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1, Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	// A sample without an utterance makes OracleProvider fail.
	ds := smallDataset(t)
	bad := append([]*Sample{}, ds.Legit...)
	bad = append(bad, &Sample{VARec: make([]float64, 8000), WearRec: make([]float64, 9000)})
	if _, err := ps.ScoreAll(bad); err == nil {
		t.Error("provider failure should propagate")
	}
	empty, err := ps.ScoreAll(nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty input: scores %v, err %v", empty, err)
	}
}

// TestParallelOptions checks the sensing and sync options reach the
// workers' Defense instances (via observable score changes).
func TestParallelOptions(t *testing.T) {
	ds := smallDataset(t)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	w := device.NewFossilGen5()
	base, err := NewParallelScorer(detector.MethodFull, w, provider, 5, Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := NewParallelScorer(detector.MethodFull, w, provider, 5, Workers(2),
		WithSensing(func(c *sensing.Config) { c.FFTSize = 32; c.HopSize = 8 }))
	if err != nil {
		t.Fatal(err)
	}
	a, err := base.ScoreAll(ds.Legit[:2])
	if err != nil {
		t.Fatal(err)
	}
	b, err := mutated.ScoreAll(ds.Legit[:2])
	if err != nil {
		t.Fatal(err)
	}
	if a[0] == b[0] && a[1] == b[1] {
		t.Error("sensing mutation had no effect on scores")
	}
	// Invalid sensing mutations must fail at construction.
	if _, err := NewParallelScorer(detector.MethodFull, w, provider, 5,
		WithSensing(func(c *sensing.Config) { c.FFTSize = 63 })); err == nil {
		t.Error("invalid sensing config should fail at construction")
	}
}

// TestSetDefaultWorkers checks the package-wide override used by
// cmd/benchgen's -workers flag.
func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	ps, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Workers() != 3 {
		t.Errorf("workers = %d, want default override 3", ps.Workers())
	}
	SetDefaultWorkers(0)
	ps, err = NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("workers = %d, want GOMAXPROCS %d", ps.Workers(), runtime.GOMAXPROCS(0))
	}
	// Explicit option beats the global default.
	SetDefaultWorkers(3)
	ps, err = NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1, Workers(5))
	if err != nil {
		t.Fatal(err)
	}
	if ps.Workers() != 5 {
		t.Errorf("workers = %d, want explicit 5", ps.Workers())
	}
}

// TestSampleSeedProperties guards the (seed, index) derivation: distinct
// indexes and distinct seeds must yield distinct streams, and the mapping
// must be pure.
func TestSampleSeedProperties(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := SampleSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indexes %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if SampleSeed(1, 0) == SampleSeed(2, 0) {
		t.Error("different scorer seeds should derive different sample seeds")
	}
	if SampleSeed(9, 7) != SampleSeed(9, 7) {
		t.Error("derivation must be deterministic")
	}
}

// benchScoringSamples builds a fixed scoring workload once per benchmark
// binary run.
var benchScoringOnce sync.Once
var benchScoringSamples []*Sample

func scoringWorkload(b *testing.B) []*Sample {
	b.Helper()
	benchScoringOnce.Do(func() {
		ds, err := BuildDataset(DatasetConfig{
			Participants:    4,
			CommandsPerUser: 4,
			AttacksPerKind:  8,
			Kinds:           []attack.Kind{attack.Replay},
			Seed:            1,
		})
		if err != nil {
			b.Fatal(err)
		}
		benchScoringSamples = append(ds.Legit, ds.Attacks[attack.Replay]...)
	})
	return benchScoringSamples
}

// BenchmarkScoreAllSerial / BenchmarkScoreAllParallel compare dataset
// scoring throughput; report samples/sec for direct comparison.
func BenchmarkScoreAllSerial(b *testing.B) {
	samples := scoringWorkload(b)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	sc, err := NewScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.ScoreAll(samples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(samples)*b.N)/b.Elapsed().Seconds(), "samples/s")
}

func benchmarkScoreAllParallel(b *testing.B, workers int) {
	samples := scoringWorkload(b)
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	ps, err := NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1, Workers(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.ScoreAll(samples); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(samples)*b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkScoreAllParallel2(b *testing.B) { benchmarkScoreAllParallel(b, 2) }
func BenchmarkScoreAllParallel4(b *testing.B) { benchmarkScoreAllParallel(b, 4) }
func BenchmarkScoreAllParallelMax(b *testing.B) {
	benchmarkScoreAllParallel(b, runtime.GOMAXPROCS(0))
}
