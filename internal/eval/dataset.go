package eval

import (
	"fmt"
	"math/rand"

	"vibguard/internal/acoustics"
	"vibguard/internal/attack"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/dsp"
	"vibguard/internal/phoneme"
	"vibguard/internal/syncnet"
)

// Condition captures one physical setting of the experiments.
type Condition struct {
	// Room is the environment (A-D).
	Room acoustics.Room
	// UserToVAM is the legitimate user's distance to the VA device.
	UserToVAM float64
	// BarrierToVAM is the distance from the barrier to the VA device
	// (2 m in most experiments, swept in Fig. 11c).
	BarrierToVAM float64
	// BarrierToWearableM is the distance from the barrier to the user's
	// wearable during an attack (2 m in the paper).
	BarrierToWearableM float64
	// UserSPL is the user's speaking level at 1 m in dB SPL.
	UserSPL float64
	// AttackSPL is the adversary's playback level in dB SPL (65/75/85).
	AttackSPL float64
}

// DefaultCondition returns the paper's standard setting in Room A.
func DefaultCondition() Condition {
	room, err := acoustics.RoomByName("A")
	if err != nil {
		// Unreachable: Room A always exists.
		panic(err)
	}
	return Condition{
		Room:               room,
		UserToVAM:          1.5,
		BarrierToVAM:       2,
		BarrierToWearableM: 2,
		UserSPL:            70,
		AttackSPL:          75,
	}
}

// mouthToWearableM is the distance from the user's mouth to the wrist-worn
// wearable.
const mouthToWearableM = 0.3

// loudspeakerToBarrierM is the attack loudspeaker's distance to the
// barrier (10 cm in the paper).
const loudspeakerToBarrierM = 0.1

// structureToVAM and structureToWearM are the along-structure distances
// from a solid-channel attacker's injection point to the VA device on the
// table and to the wearable resting near its edge.
const (
	structureToVAM   = 0.5
	structureToWearM = 1.2
)

// Sample is one evaluation trial: the pair of recordings plus ground
// truth.
type Sample struct {
	// VARec is the VA device's recording.
	VARec []float64
	// WearRec is the wearable's recording, including the simulated
	// network-delay offset that the defense must remove.
	WearRec []float64
	// LeadSamples is the length of the pre-command ambient context in
	// both recordings; ground-truth alignments shift by this much.
	LeadSamples int
	// IsAttack is the ground-truth label.
	IsAttack bool
	// AttackKind is set for attack samples.
	AttackKind attack.Kind
	// Utterance is the source utterance (nil for hidden voice attacks).
	Utterance *phoneme.Utterance
	// Condition echoes the physical setting.
	Condition Condition
}

// Generator produces evaluation samples under controlled conditions.
type Generator struct {
	voices   []phoneme.VoiceProfile
	va       *device.VADevice
	wearable *device.Wearable
	attacker *attack.Attacker
	rng      *rand.Rand
	commands []phoneme.Command
	// barrierEst caches the adversary's probe-measured barrier estimate
	// per barrier (the probe is deterministic, so one measurement serves
	// every bypass/adaptive sample against that barrier).
	barrierEst map[string]*attack.GainEstimate
	// oracle is the adaptive adversary's replica of the defense, built
	// lazily on the first Adaptive sample.
	oracle attack.Oracle
}

// NewGenerator creates a generator with the given participant count and
// seed. It uses the Nexus-6-as-VA and Fossil Gen 5 devices of Section
// VII-A.
func NewGenerator(participants int, seed int64) (*Generator, error) {
	if participants < 2 {
		return nil, fmt.Errorf("eval: need at least 2 participants, got %d", participants)
	}
	return &Generator{
		voices:   phoneme.NewVoicePool(participants, seed),
		va:       device.NewGoogleHome(),
		wearable: device.NewFossilGen5(),
		attacker: attack.NewAttacker(seed + 1),
		rng:      rand.New(rand.NewSource(seed + 2)),
		commands: phoneme.Commands(),
	}, nil
}

// Voices returns the participant voice pool.
func (g *Generator) Voices() []phoneme.VoiceProfile { return g.voices }

// Commands returns the command corpus.
func (g *Generator) Commands() []phoneme.Command { return g.commands }

// Wearable returns the generator's wearable device model.
func (g *Generator) Wearable() *device.Wearable { return g.wearable }

// recordPair captures one acoustic source on both devices: the VA at
// vaDist and the wearable at wearDist, inside the given room, optionally
// through the barrier. The wearable recording gets a random network-delay
// lead of 50-150 ms.
// recordingContextSec is the ambient context captured before and after
// the command in every recording (the VA buffers audio around the wake
// word; the wearable serves its trigger window the same way).
const recordingContextSec = 0.5

func (g *Generator) recordPair(source []float64, cond Condition, vaDist, wearDist float64, thruBarrier bool) (va, wear []float64, lead int, err error) {
	// The user faces a random direction relative to the VA device, so the
	// far-field path loses a random amount of high-frequency energy to
	// source directivity; the wrist-worn wearable stays near the mouth.
	orientation := 0.05 + 0.95*g.rng.Float64()
	lead = int(recordingContextSec * phoneme.SampleRate)
	padded := dsp.Concat(make([]float64, lead), source, make([]float64, lead))
	pVA, err := cond.Room.Transmit(padded, acoustics.PathConfig{
		SourceSPL:       sourceSPL(cond, thruBarrier),
		DistanceM:       vaDist,
		ThroughBarrier:  thruBarrier,
		OrientationGain: orientation,
		SampleRate:      phoneme.SampleRate,
	}, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	pWear, err := cond.Room.Transmit(padded, acoustics.PathConfig{
		SourceSPL:      sourceSPL(cond, thruBarrier),
		DistanceM:      wearDist,
		ThroughBarrier: thruBarrier,
		SampleRate:     phoneme.SampleRate,
	}, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	vaRec, err := g.va.Record(pVA, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	wearRec, err := g.wearable.Record(pWear, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	delay := 0.05 + g.rng.Float64()*0.1
	wearRec = syncnet.SimulateNetworkDelay(wearRec, delay, phoneme.SampleRate, g.rng)
	return vaRec, wearRec, lead, nil
}

func sourceSPL(cond Condition, thruBarrier bool) float64 {
	if thruBarrier {
		return cond.AttackSPL
	}
	return cond.UserSPL
}

// recordPairSolid captures a solid-channel attack drive on both devices:
// the waveform travels along the room's structure (no barrier, no air
// spreading) to the VA and the wearable. The wearable recording gets the
// same network-delay lead as the airborne path.
func (g *Generator) recordPairSolid(source []float64, cond Condition) (va, wear []float64, lead int, err error) {
	lead = int(recordingContextSec * phoneme.SampleRate)
	padded := dsp.Concat(make([]float64, lead), source, make([]float64, lead))
	pVA, err := cond.Room.TransmitSolid(padded, acoustics.SolidPathConfig{
		SourceSPL:  cond.AttackSPL,
		DistanceM:  structureToVAM,
		SampleRate: phoneme.SampleRate,
	}, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	pWear, err := cond.Room.TransmitSolid(padded, acoustics.SolidPathConfig{
		SourceSPL:  cond.AttackSPL,
		DistanceM:  structureToWearM,
		SampleRate: phoneme.SampleRate,
	}, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	vaRec, err := g.va.Record(pVA, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	wearRec, err := g.wearable.Record(pWear, g.rng)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("eval: %w", err)
	}
	delay := 0.05 + g.rng.Float64()*0.1
	wearRec = syncnet.SimulateNetworkDelay(wearRec, delay, phoneme.SampleRate, g.rng)
	return vaRec, wearRec, lead, nil
}

// barrierEstimate returns the adversary's probe measurement of the room's
// barrier, cached per barrier. The measurement is noiseless — the
// adversary probes at leisure with a known chirp — so the estimate is
// deterministic and the cache never changes the rng stream.
func (g *Generator) barrierEstimate(room acoustics.Room) (*attack.GainEstimate, error) {
	key := fmt.Sprintf("%s/%v", room.Barrier.Material, room.Barrier.ThicknessCM)
	if est, ok := g.barrierEst[key]; ok {
		return est, nil
	}
	probe := attack.ProbeSignal(phoneme.SampleRate)
	received := room.Barrier.Apply(probe, phoneme.SampleRate)
	est, err := attack.EstimateBarrierGain(probe, received, phoneme.SampleRate, 24)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	if g.barrierEst == nil {
		g.barrierEst = make(map[string]*attack.GainEstimate)
	}
	g.barrierEst[key] = est
	return est, nil
}

// adaptiveOracle lazily builds the adaptive adversary's replica of the
// defense: the vibration-domain detector on the same wearable model,
// which is the component the optimization must fool.
func (g *Generator) adaptiveOracle() (attack.Oracle, error) {
	if g.oracle != nil {
		return g.oracle, nil
	}
	cfg := core.DefaultConfig(g.wearable, nil)
	cfg.Method = detector.MethodVibration
	d, err := core.NewDefense(cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	g.oracle = d
	return d, nil
}

// Legit generates a legitimate sample: participant voiceIdx speaks command
// cmdIdx in the room; the VA records at UserToVAM and the wearable at
// wrist distance.
func (g *Generator) Legit(voiceIdx, cmdIdx int, cond Condition) (*Sample, error) {
	if voiceIdx < 0 || voiceIdx >= len(g.voices) {
		return nil, fmt.Errorf("eval: voice index %d out of range", voiceIdx)
	}
	cmd := g.commands[cmdIdx%len(g.commands)]
	synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(g.voices[voiceIdx]))
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	vaRec, wearRec, lead, err := g.recordPair(utt.Samples, cond, cond.UserToVAM, mouthToWearableM, false)
	if err != nil {
		return nil, err
	}
	return &Sample{
		VARec: vaRec, WearRec: wearRec, LeadSamples: lead,
		Utterance: utt, Condition: cond,
	}, nil
}

// withUtteranceSeed varies the per-utterance articulation randomness while
// keeping the speaker identity.
func (g *Generator) withUtteranceSeed(p phoneme.VoiceProfile) phoneme.VoiceProfile {
	p.Seed = g.rng.Int63()
	return p
}

// Attack generates an attack sample of the given kind against victim
// victimIdx using command cmdIdx. The attack loudspeaker is 10 cm behind
// the barrier; the VA is BarrierToVAM away and the wearable (worn by the
// present user) BarrierToWearableM away.
func (g *Generator) Attack(kind attack.Kind, victimIdx, cmdIdx int, cond Condition) (*Sample, error) {
	if victimIdx < 0 || victimIdx >= len(g.voices) {
		return nil, fmt.Errorf("eval: victim index %d out of range", victimIdx)
	}
	cmd := g.commands[cmdIdx%len(g.commands)]
	victim := g.voices[victimIdx]

	var sourceUtt *phoneme.Utterance
	var attackAudio []float64
	switch kind {
	case attack.Random:
		adversary := g.voices[(victimIdx+1+g.rng.Intn(len(g.voices)-1))%len(g.voices)]
		synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(adversary))
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		sourceUtt = utt
		// The experiments replay all attack sounds through the barrier
		// with a loudspeaker (Section VII-A), so the adversary's voice
		// goes through the same record-and-playback chain.
		attackAudio, err = g.attacker.ReplayAttack(utt.Samples)
		if err != nil {
			return nil, err
		}
	case attack.Replay:
		synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(victim))
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		sourceUtt = utt
		attackAudio, err = g.attacker.ReplayAttack(utt.Samples)
		if err != nil {
			return nil, err
		}
	case attack.Synthesis:
		victimSamples, err := g.victimSamples(victim)
		if err != nil {
			return nil, err
		}
		clone, err := g.attacker.CloneVoice(victimSamples)
		if err != nil {
			return nil, err
		}
		synth, err := phoneme.NewSynthesizer(clone)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		sourceUtt = utt
		attackAudio, err = g.attacker.ReplayAttack(utt.Samples)
		if err != nil {
			return nil, err
		}
	case attack.HiddenVoice:
		synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(victim))
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		sourceUtt = utt
		attackAudio, err = g.attacker.HiddenVoiceAttack(utt.Samples)
		if err != nil {
			return nil, err
		}
	case attack.SolidChannel:
		// SUAD-style: the command (victim's replayed voice) is driven into
		// the structure the devices sit on, so it never crosses the
		// barrier. The solid path has its own record helper — return here.
		synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(victim))
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		drive, err := g.attacker.SolidChannelAttack(utt.Samples)
		if err != nil {
			return nil, err
		}
		vaRec, wearRec, lead, err := g.recordPairSolid(drive, cond)
		if err != nil {
			return nil, err
		}
		return &Sample{
			VARec: vaRec, WearRec: wearRec, LeadSamples: lead,
			IsAttack: true, AttackKind: kind,
			Utterance: utt, Condition: cond,
		}, nil
	case attack.BarrierBypass:
		synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(victim))
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		est, err := g.barrierEstimate(cond.Room)
		if err != nil {
			return nil, err
		}
		sourceUtt = utt
		attackAudio, err = g.attacker.BarrierBypassAttack(utt.Samples, est, attack.DefaultBypassConfig(phoneme.SampleRate))
		if err != nil {
			return nil, err
		}
	case attack.Adaptive:
		synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(victim))
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		utt, err := synth.Synthesize(cmd)
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		est, err := g.barrierEstimate(cond.Room)
		if err != nil {
			return nil, err
		}
		oracle, err := g.adaptiveOracle()
		if err != nil {
			return nil, err
		}
		acfg := attack.DefaultAdaptiveConfig(g.rng.Int63())
		acfg.VADistanceM = loudspeakerToBarrierM + cond.BarrierToVAM
		acfg.WearDistanceM = loudspeakerToBarrierM + cond.BarrierToWearableM
		res, err := g.attacker.AdaptiveAttack(utt.Samples, est, oracle, acfg)
		if err != nil {
			return nil, err
		}
		sourceUtt = utt
		attackAudio = res.Audio
	default:
		return nil, fmt.Errorf("eval: unknown attack kind %d", kind)
	}

	vaRec, wearRec, lead, err := g.recordPair(attackAudio, cond,
		loudspeakerToBarrierM+cond.BarrierToVAM,
		loudspeakerToBarrierM+cond.BarrierToWearableM, true)
	if err != nil {
		return nil, err
	}
	return &Sample{
		VARec: vaRec, WearRec: wearRec, LeadSamples: lead,
		IsAttack: true, AttackKind: kind,
		Utterance: sourceUtt, Condition: cond,
	}, nil
}

// victimSamples synthesizes the 20 victim voice commands the synthesis
// attacker trains on (Section VII-A); a small cache would be possible but
// the clone only needs a few utterances for a stable F0 estimate.
func (g *Generator) victimSamples(victim phoneme.VoiceProfile) ([][]float64, error) {
	samples := make([][]float64, 0, 3)
	synth, err := phoneme.NewSynthesizer(g.withUtteranceSeed(victim))
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	for i := 0; i < 3; i++ {
		utt, err := synth.Synthesize(g.commands[i])
		if err != nil {
			return nil, fmt.Errorf("eval: %w", err)
		}
		samples = append(samples, utt.Samples)
	}
	return samples, nil
}
