package eval

import (
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/device"
	"vibguard/internal/selection"
)

// TestHeadlineShape is the calibration regression guard: on a small but
// condition-swept dataset, the reproduction must preserve the paper's
// headline orderings — the full system detects every attack kind far
// better than chance, and the audio-domain baseline is clearly the
// weakest arm. It exists so future tuning of the physics cannot silently
// break the result the repository is built to demonstrate.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("swept dataset takes ~30s")
	}
	ds, err := BuildDataset(DatasetConfig{
		Participants:    6,
		CommandsPerUser: 3,
		AttacksPerKind:  18,
		Conditions:      StandardConditions(),
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	for _, kind := range attack.PaperKinds() {
		sums, err := EvaluateArms(ds, ds.Attacks[kind], device.NewFossilGen5(), provider, 7)
		if err != nil {
			t.Fatal(err)
		}
		audio, vib, full := sums[0], sums[1], sums[2]
		// The full system must detect strongly (paper: <6% EER; we allow
		// headroom for the small dataset).
		if full.EER > 0.15 {
			t.Errorf("%v: full system EER = %.1f%%, want <= 15%%", kind, full.EER*100)
		}
		if full.AUC < 0.9 {
			t.Errorf("%v: full system AUC = %.3f, want >= 0.9", kind, full.AUC)
		}
		// The audio-domain baseline must be clearly the weakest arm.
		if audio.EER < full.EER {
			t.Errorf("%v: audio baseline EER %.1f%% beat the full system %.1f%%",
				kind, audio.EER*100, full.EER*100)
		}
		if audio.EER < vib.EER {
			t.Errorf("%v: audio baseline EER %.1f%% beat the vibration baseline %.1f%%",
				kind, audio.EER*100, vib.EER*100)
		}
		// Every vibration-domain arm must beat chance decisively.
		if vib.AUC < 0.85 {
			t.Errorf("%v: vibration baseline AUC = %.3f", kind, vib.AUC)
		}
	}
}

// TestExtensionAttackShape pins the adaptive-adversary extensions to their
// measured regime: the paper's orderings do NOT hold for these kinds — that
// is the point of adding them — so instead of the strict headline bounds we
// pin each kind's verdict and a loose AUC floor. Solid channel is the hard
// case (partial cross-domain correlation survives, defense near chance);
// barrier bypass and the adaptive hill-climb degrade but do not break it.
func TestExtensionAttackShape(t *testing.T) {
	if testing.Short() {
		t.Skip("swept dataset takes ~30s")
	}
	ds, err := BuildDataset(DatasetConfig{
		Participants:    6,
		CommandsPerUser: 3,
		AttacksPerKind:  18,
		Conditions:      StandardConditions(),
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	cases := []struct {
		kind       attack.Kind
		verdict    string
		minFullAUC float64
	}{
		// Measured at this config: EER 47.2%, AUC 0.531 — near chance but
		// not inverted. If tuning pushes AUC below 0.35 the channel has
		// become a detector-inverter, which is a physics bug, not a
		// stronger attack.
		{attack.SolidChannel, "breaks", 0.35},
		// Measured: EER 22.2%, AUC 0.846.
		{attack.BarrierBypass, "degrades", 0.7},
		// Measured: EER 22.2%, AUC 0.890.
		{attack.Adaptive, "degrades", 0.7},
	}
	for _, tc := range cases {
		sums, err := EvaluateArms(ds, ds.Attacks[tc.kind], device.NewFossilGen5(), provider, 7)
		if err != nil {
			t.Fatal(err)
		}
		full := sums[2]
		if got := VerdictFor(full.EER); got != tc.verdict {
			t.Errorf("%v: full system EER %.1f%% -> verdict %q, want %q",
				tc.kind, full.EER*100, got, tc.verdict)
		}
		if full.AUC < tc.minFullAUC {
			t.Errorf("%v: full system AUC = %.3f, want >= %.2f", tc.kind, full.AUC, tc.minFullAUC)
		}
	}
}

// TestFullSystemVolumeStability guards Fig. 11a's shape: the full system's
// EER must stay bounded across all three attack volumes.
func TestFullSystemVolumeStability(t *testing.T) {
	if testing.Short() {
		t.Skip("three swept datasets take ~60s")
	}
	cells, err := Figure11a(FigureConfig{Participants: 5, CommandsPerUser: 3, AttacksPerKind: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Method.String() == "our defense system" && c.EER > 0.2 {
			t.Errorf("full system at %s: EER %.1f%%, want <= 20%%", c.Label, c.EER*100)
		}
	}
}
