package eval

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/device"
	"vibguard/internal/selection"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_metrics.json from the current pipeline output")

// goldenArm pins one detector arm's headline metrics for one attack kind.
type goldenArm struct {
	Method string  `json:"method"`
	AUC    float64 `json:"auc"`
	EER    float64 `json:"eer"`
}

// goldenMetrics is the on-disk golden file: per-attack-kind metrics of all
// three detector arms on a small fixed-seed dataset.
type goldenMetrics struct {
	Seed  int64                  `json:"seed"`
	Kinds map[string][]goldenArm `json:"kinds"`
}

const goldenPath = "testdata/golden_metrics.json"

// goldenDataset is deliberately small: the point is pinning exact pipeline
// output, not statistical power.
func computeGoldenMetrics(t *testing.T) *goldenMetrics {
	t.Helper()
	const seed = 77
	ds, err := BuildDataset(DatasetConfig{Participants: 3, CommandsPerUser: 2, AttacksPerKind: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	provider := &OracleProvider{Selected: selection.CanonicalSelected()}
	out := &goldenMetrics{Seed: seed, Kinds: make(map[string][]goldenArm)}
	for _, kind := range attack.Kinds() {
		summaries, err := EvaluateArms(ds, ds.Attacks[kind], device.NewFossilGen5(), provider, seed)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		arms := make([]goldenArm, 0, len(summaries))
		for _, s := range summaries {
			arms = append(arms, goldenArm{Method: s.Name, AUC: s.AUC, EER: s.EER})
		}
		out.Kinds[kind.String()] = arms
	}
	return out
}

// TestGoldenMetrics pins the end-to-end evaluation output — EER and AUC per
// attack kind for all three detector arms — against a checked-in golden
// file. The pipeline is deterministic for a fixed seed, so any drift means
// a behavioral change in synthesis, acoustics, sensing, scoring, or the
// metrics themselves; regenerate deliberately with
//
//	go test ./internal/eval/ -run TestGoldenMetrics -update-golden
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping golden evaluation in -short mode")
	}
	got := computeGoldenMetrics(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	var want goldenMetrics
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.Seed != want.Seed {
		t.Fatalf("golden seed %d != test seed %d", want.Seed, got.Seed)
	}
	// Go's JSON float encoding round-trips float64 exactly, so the tolerance
	// only guards against future encoders that don't.
	const tol = 1e-9
	for kind, wantArms := range want.Kinds {
		gotArms, ok := got.Kinds[kind]
		if !ok {
			t.Errorf("attack kind %q missing from current output", kind)
			continue
		}
		if len(gotArms) != len(wantArms) {
			t.Errorf("%s: %d arms, want %d", kind, len(gotArms), len(wantArms))
			continue
		}
		for i, w := range wantArms {
			g := gotArms[i]
			if g.Method != w.Method {
				t.Errorf("%s arm %d: method %q, want %q", kind, i, g.Method, w.Method)
				continue
			}
			if math.Abs(g.AUC-w.AUC) > tol {
				t.Errorf("%s/%s: AUC %v, want %v", kind, w.Method, g.AUC, w.AUC)
			}
			if math.Abs(g.EER-w.EER) > tol {
				t.Errorf("%s/%s: EER %v, want %v", kind, w.Method, g.EER, w.EER)
			}
		}
	}
	for kind := range got.Kinds {
		if _, ok := want.Kinds[kind]; !ok {
			t.Errorf("attack kind %q not in golden file (regenerate with -update-golden)", kind)
		}
	}
}
