package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/obs"
	"vibguard/internal/sensing"
)

// ParallelScorer instrumentation. The sample timer and queue-wait
// histogram record per sample (lock-free, allocation-free, shared across
// all workers); worker_samples records each worker's share of one
// ScoreAll batch, so its spread is the per-worker throughput balance.
var (
	metScorerSamples   = obs.Default().Counter("eval.scorer.samples")
	metScorerBatches   = obs.Default().Counter("eval.scorer.batches")
	gaugeScorerWorkers = obs.Default().Gauge("eval.scorer.workers")
	stageScorerSample  = obs.Default().StageTimer("eval.scorer.sample")
	histQueueWait      = obs.Default().Histogram("eval.scorer.queue_wait_seconds")
	histWorkerSamples  = obs.Default().Histogram("eval.scorer.worker_samples")
)

// defaultWorkers overrides the GOMAXPROCS-sized worker pool when positive.
// It exists for command-line tools (cmd/benchgen -workers) that want one
// knob for every evaluation they trigger; library callers should prefer
// the Workers option.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the package-wide default worker count used by
// ParallelScorer when no Workers option is given. n <= 0 restores the
// GOMAXPROCS default. It only affects scorers built after the call.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// ParallelOption configures a ParallelScorer.
type ParallelOption func(*ParallelScorer)

// Workers fixes the worker-pool size (<= 0 keeps the default:
// SetDefaultWorkers if set, else runtime.GOMAXPROCS(0)). The scores never
// depend on the worker count — only throughput does.
func Workers(n int) ParallelOption {
	return func(ps *ParallelScorer) {
		if n > 0 {
			ps.workers = n
		}
	}
}

// WithSensing modifies the vibration-domain sensing configuration of every
// worker's Defense (nil means defaults). Used by the ablation benchmarks.
func WithSensing(mutate func(*sensing.Config)) ParallelOption {
	return func(ps *ParallelScorer) { ps.spec.mutate = mutate }
}

// WithoutSync disables the Eq. (5) synchronization (zero maximum lag), so
// the wearable's network-delay offset is left in place.
func WithoutSync() ParallelOption {
	return func(ps *ParallelScorer) { ps.spec.noSync = true }
}

// ParallelScorer is the concurrent batch-scoring engine: it shards a
// sample slice across a pool of workers, each owning a private
// core.Defense instance (with its own copy of the wearable device model),
// and scores every sample with a deterministic RNG derived from
// (seed, sample index) via SampleSeed. Because nothing about a sample's
// score depends on worker identity, scheduling order, or pool size, the
// output vector is bit-identical to the sequential Scorer's for any worker
// count.
//
// A ParallelScorer holds no mutable state; concurrent ScoreAll calls (even
// on overlapping sample slices) are safe.
type ParallelScorer struct {
	spec    scorerSpec
	workers int
}

// NewParallelScorer builds a concurrent scorer for one method. The
// provider is required for MethodFull and ignored otherwise; it must be
// safe for concurrent SpansFor calls (both OracleProvider and
// BRNNProvider are: the oracle reads only immutable alignments, and the
// BRNN detector pools its mutable inference scratch per caller while the
// model weights stay read-only).
func NewParallelScorer(method detector.Method, w *device.Wearable, provider SpanProvider, seed int64, opts ...ParallelOption) (*ParallelScorer, error) {
	ps := &ParallelScorer{
		spec: scorerSpec{method: method, wearable: w, provider: provider, seed: seed},
	}
	for _, opt := range opts {
		opt(ps)
	}
	if ps.workers <= 0 {
		if n := int(defaultWorkers.Load()); n > 0 {
			ps.workers = n
		} else {
			ps.workers = runtime.GOMAXPROCS(0)
		}
	}
	if err := ps.spec.validate(); err != nil {
		return nil, err
	}
	// Build one throwaway Defense now so configuration errors surface at
	// construction, not inside the worker pool.
	if _, err := ps.spec.newDefense(); err != nil {
		return nil, err
	}
	return ps, nil
}

// Workers returns the configured worker-pool size.
func (ps *ParallelScorer) Workers() int { return ps.workers }

// ScoreAll scores a slice of samples across the worker pool and returns
// one score per sample, in input order. The result is bit-identical to
// (*Scorer).ScoreAll with the same seed, regardless of worker count.
func (ps *ParallelScorer) ScoreAll(samples []*Sample) ([]float64, error) {
	n := len(samples)
	if n == 0 {
		return []float64{}, nil
	}
	workers := ps.workers
	if workers > n {
		workers = n
	}
	metScorerBatches.Inc()
	gaugeScorerWorkers.Set(float64(workers))
	batchStart := time.Now()

	out := make([]float64, n)
	var next atomic.Int64   // next sample index to claim
	var failed atomic.Bool  // set once any worker errors
	var firstErr error      // guarded by errOnce
	var errOnce sync.Once
	var wg sync.WaitGroup

	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			handled := 0
			defer func() { histWorkerSamples.Observe(float64(handled)) }()
			defense, err := ps.spec.newDefense()
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Queue wait: how long the sample sat in the batch before a
				// worker claimed it — the batch-level backlog signal.
				histQueueWait.Observe(time.Since(batchStart).Seconds())
				sp := stageScorerSample.Start()
				rng := rand.New(rand.NewSource(SampleSeed(ps.spec.seed, i)))
				score, err := scoreSample(defense, &ps.spec, samples[i], rng)
				sp.End()
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("eval: sample %d: %w", i, err) })
					failed.Store(true)
					return
				}
				out[i] = score
				handled++
				metScorerSamples.Inc()
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil, firstErr
	}
	return out, nil
}

// ScoreDataset scores the legit samples and one attack sample set and
// summarizes them, the common shape of every figure reproduction.
func (ps *ParallelScorer) ScoreDataset(name string, legit, attacks []*Sample) (Summary, error) {
	legitScores, err := ps.ScoreAll(legit)
	if err != nil {
		return Summary{}, err
	}
	attackScores, err := ps.ScoreAll(attacks)
	if err != nil {
		return Summary{}, err
	}
	return Summarize(name, legitScores, attackScores)
}
