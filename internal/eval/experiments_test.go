package eval

import (
	"testing"

	"vibguard/internal/attack"
)

func TestStandardConditions(t *testing.T) {
	conds := StandardConditions()
	if len(conds) != 36 {
		t.Fatalf("conditions = %d, want 36 (4 rooms x 3 distances x 3 volumes)", len(conds))
	}
	rooms := map[string]bool{}
	spls := map[float64]bool{}
	for _, c := range conds {
		rooms[c.Room.Name] = true
		spls[c.AttackSPL] = true
	}
	if len(rooms) != 4 || len(spls) != 3 {
		t.Errorf("coverage: %d rooms, %d attack SPLs", len(rooms), len(spls))
	}
}

func TestFigure3BarrierEffect(t *testing.T) {
	cmps, err := Figure3([]string{"ae", "v"}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 2 {
		t.Fatalf("comparisons = %d", len(cmps))
	}
	for _, cmp := range cmps {
		// High-frequency bins (>500Hz) must be attenuated after the
		// barrier; low bins much less.
		var hiBefore, hiAfter, loBefore, loAfter float64
		for k, f := range cmp.Freqs {
			if f > 500 {
				hiBefore += cmp.Before[k]
				hiAfter += cmp.After[k]
			} else if f > 50 {
				loBefore += cmp.Before[k]
				loAfter += cmp.After[k]
			}
		}
		if hiAfter > hiBefore*0.3 {
			t.Errorf("%s: high band not attenuated: %v -> %v", cmp.Symbol, hiBefore, hiAfter)
		}
		if loAfter < loBefore*0.3 {
			t.Errorf("%s: low band over-attenuated: %v -> %v", cmp.Symbol, loBefore, loAfter)
		}
	}
}

func TestFigure4VibrationDomainSeparation(t *testing.T) {
	// The key insight of Fig. 4: in the vibration domain, the thru-barrier
	// version of a vowel collapses while the direct version stays strong.
	cmps, err := Figure4([]string{"ae"}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cmp := cmps[0]
	var before, after float64
	for k, f := range cmp.Freqs {
		if f <= 5 {
			continue // skip the artifact band
		}
		before += cmp.Before[k]
		after += cmp.After[k]
	}
	if after > before*0.5 {
		t.Errorf("vibration-domain barrier effect too weak: %v -> %v", before, after)
	}
}

func TestFigure7Artifact(t *testing.T) {
	freqs, power, err := Figure7(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(freqs) != len(power) {
		t.Fatal("length mismatch")
	}
	var low, lowN, mid, midN float64
	for k, f := range freqs {
		switch {
		case f > 0.2 && f <= 5:
			low += power[k]
			lowN++
		case f >= 20 && f <= 80:
			mid += power[k]
			midN++
		}
	}
	if low/lowN < 2*mid/midN {
		t.Errorf("0-5Hz artifact response %v not dominant over mid band %v", low/lowN, mid/midN)
	}
}

func TestTableIShape(t *testing.T) {
	entries, err := TableI(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 barriers x 4 devices x 3 attacks x 2 SPLs + 2x2 hidden cells.
	if len(entries) != 52 {
		t.Fatalf("entries = %d, want 52", len(entries))
	}
	perDevice := map[string]int{}
	for _, e := range entries {
		if e.Successes > e.Attempts {
			t.Errorf("%+v: successes exceed attempts", e)
		}
		if !e.Tested && e.Successes != 0 {
			t.Errorf("%+v: untested cell has successes", e)
		}
		// Siri devices must not be tested for random/synthesis.
		if (e.Device == "iPhone" || e.Device == "MacBook Pro") &&
			(e.Attack == attack.Random || e.Attack == attack.Synthesis) && e.Tested {
			t.Errorf("%s should not be tested for %v", e.Device, e.Attack)
		}
		perDevice[e.Device] += e.Successes
	}
	// Ordering: Google Home most susceptible, iPhone least.
	if perDevice["Google Home"] <= perDevice["iPhone"] {
		t.Errorf("susceptibility ordering broken: GH %d vs iPhone %d",
			perDevice["Google Home"], perDevice["iPhone"])
	}
	if _, err := TableI(0, 1); err == nil {
		t.Error("zero attempts should error")
	}
}

func TestFigure9SmallRun(t *testing.T) {
	cfg := FigureConfig{Participants: 4, CommandsPerUser: 2, AttacksPerKind: 6, Seed: 1}
	sums, err := Figure9(attack.Replay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 3 {
		t.Fatalf("arms = %d", len(sums))
	}
	// The full system must beat chance decisively even on a tiny dataset.
	if sums[2].AUC < 0.8 {
		t.Errorf("full system AUC = %v, want >= 0.8", sums[2].AUC)
	}
}

func TestFigure11aSmallRun(t *testing.T) {
	cfg := FigureConfig{Participants: 4, CommandsPerUser: 2, AttacksPerKind: 6, Seed: 1}
	cells, err := Figure11a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 volumes x 3 methods.
	if len(cells) != 9 {
		t.Fatalf("cells = %d, want 9", len(cells))
	}
	for _, c := range cells {
		if c.EER < 0 || c.EER > 1 {
			t.Errorf("cell %+v EER out of range", c)
		}
	}
}

func TestFigure11bSmallRun(t *testing.T) {
	cfg := FigureConfig{Participants: 4, CommandsPerUser: 2, AttacksPerKind: 4, Seed: 1}
	cells, err := Figure11b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 materials x 4 attacks.
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
}

func TestDetectionAccuracySmallRun(t *testing.T) {
	direct, thru, err := DetectionAccuracy(16, 2, 5, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Even a small model beats chance comfortably; the full-size model
	// (benchgen) approaches the paper's 94%/91%.
	if direct < 0.75 {
		t.Errorf("direct accuracy = %v, want >= 0.75", direct)
	}
	if thru < 0.6 {
		t.Errorf("thru-barrier accuracy = %v, want >= 0.6", thru)
	}
}

func TestFigureErrorPaths(t *testing.T) {
	if _, err := Figure3([]string{"ae"}, 0, 1); err == nil {
		t.Error("zero samples should error")
	}
	if _, err := Figure4([]string{"ae"}, 0, 1); err == nil {
		t.Error("zero samples should error")
	}
	if _, err := Figure3([]string{"bogus"}, 1, 1); err == nil {
		t.Error("unknown phoneme should error")
	}
}

func TestWearableComparisonSmallRun(t *testing.T) {
	cfg := FigureConfig{Participants: 4, CommandsPerUser: 2, AttacksPerKind: 6, Seed: 1}
	cells, err := WearableComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Summary.AUC < 0.7 {
			t.Errorf("%s AUC = %v, want >= 0.7", c.Wearable, c.Summary.AUC)
		}
	}
	if cells[0].Wearable == cells[1].Wearable {
		t.Error("wearables identical")
	}
}

func TestBodyMotionRobustnessSmallRun(t *testing.T) {
	cfg := FigureConfig{Participants: 4, CommandsPerUser: 2, AttacksPerKind: 6, Seed: 1}
	cells, err := BodyMotionRobustness(cfg, []float64{0, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	// The sub-5Hz crop should keep motion degradation modest.
	if cells[1].Summary.AUC < cells[0].Summary.AUC-0.2 {
		t.Errorf("body motion degraded AUC too much: %v -> %v",
			cells[0].Summary.AUC, cells[1].Summary.AUC)
	}
}
