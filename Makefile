# VibGuard build/test targets. `make check` is the tier-1 gate;
# `make race` is the concurrency gate the parallel evaluation engine is
# developed under (go vet + the full test suite with the race detector).

GO ?= go

.PHONY: build test check race fuzz bench bench-scoring bench-dsp bench-brnn benchgen obs-smoke serve-smoke serve-race race-brnn route-race route-smoke bench-wire stream-race stream-smoke bench-stream profile-race profile-smoke attack-race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build test

# Concurrency gate: vet everything, then run the race detector over the
# whole module (the eval engine's equivalence and overlapping-slice tests
# are the interesting part; -short skips the long swept-dataset runs).
race:
	$(GO) vet ./...
	$(GO) test -race -short ./...

# Short fuzz runs of the WAV decoder, the Eq. (5) alignment, the detector
# deserializer, the session wire-protocol frame decoder, and the
# barrier-response estimator; the checked-in corpora under testdata/fuzz/
# replay in plain `make test` too.
fuzz:
	$(GO) test -fuzz=FuzzRead -fuzztime=30s ./internal/wavio/
	$(GO) test -fuzz=FuzzAlignRecordings -fuzztime=30s ./internal/syncnet/
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./internal/segment/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/serve/
	$(GO) test -fuzz=FuzzEstimateBarrierGain -fuzztime=30s ./internal/attack/

# Focused race run for the parallel scoring engine only.
race-eval:
	$(GO) vet ./internal/eval/...
	$(GO) test -race ./internal/eval/...

# Race gate for the adaptive-adversary attack corpus: the attack
# generators (bypass equalizer, adaptive hill-climb, fuzz corpus replay)
# and the solid-channel acoustics run under the race detector.
attack-race:
	$(GO) vet ./internal/attack/ ./internal/acoustics/
	$(GO) test -race ./internal/attack/ ./internal/acoustics/

# Full benchmark sweep (regenerates every figure; slow).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serial-vs-parallel dataset-scoring throughput (EXPERIMENTS.md records
# the output).
bench-scoring:
	$(GO) test -bench='BenchmarkDatasetScoring|BenchmarkScoreAll' -run=^$$ . ./internal/eval/

# DSP micro-benchmark baseline: runs the shared kernels (planned engine vs
# preserved legacy implementations) and rewrites the checked-in
# BENCH_dsp.json so future PRs have a perf trajectory.
bench-dsp:
	$(GO) run ./cmd/benchdsp -out BENCH_dsp.json

# BRNN inference micro-benchmark baseline: the batched session kernels
# against the per-frame reference path on the paper architecture, written
# to the checked-in BENCH_brnn.json (the bench-dsp arrangement).
bench-brnn:
	$(GO) run ./cmd/benchbrnn -out BENCH_brnn.json

# Race gate for the batched inference kernels and the pooled detector
# scratch: the bit-equivalence suites and the concurrent-session tests run
# under the race detector.
race-brnn:
	$(GO) vet ./internal/brnn/ ./internal/segment/
	$(GO) test -race ./internal/brnn/ ./internal/segment/

benchgen:
	$(GO) run ./cmd/benchgen -quick

# Observability smoke test: boot vibguardd with the debug listener, curl
# /healthz and /metrics, and assert the Inspect stage spans and syncnet
# attempt counters are populated after the scenario pass.
obs-smoke:
	./scripts/obs_smoke.sh

# Session-server smoke test: boot vibguardd -serve against a simulated
# wearable fleet, assert the concurrent fleet pass completes with matching
# verdicts, scrape the serve counters from /metrics, and require a clean
# drain on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# Race gate for the session server and its daemon wiring: the 64-session
# soak, the fault matrix, and the drain suite all run under the race
# detector.
serve-race:
	$(GO) vet ./internal/serve/ ./cmd/vibguardd/
	$(GO) test -race -timeout 10m ./internal/serve/ ./cmd/vibguardd/

# Race gate for the routing tier: the ring property tests, the multi-node
# chaos suite (node death mid-session, partitioned links, rolling drain,
# two-hop half-close), and the 3-node soak with its bit-identical
# single-node cross-check, all under the race detector.
route-race:
	$(GO) vet ./internal/router/
	$(GO) test -race -timeout 10m ./internal/router/

# Multi-node routing smoke test: boot vibguardd -route with 3 nodes, kill
# one mid-burst, and assert sessions complete on the survivors with typed
# node-loss errors, zero mismatches, and a clean router-then-nodes drain.
route-smoke:
	./scripts/route_smoke.sh

# Wire-protocol codec comparison (gob vs framed binary); EXPERIMENTS.md
# records the output.
bench-wire:
	$(GO) test -bench='SessionRoundTrip|ErrorRoundTrip' -benchmem -run=^$$ ./internal/serve/

# Streaming-pipeline race gate: vet plus the race detector over every
# layer the chunked ingest path crosses (streaming STFT and VAD, the
# incremental aligner, the early-exit inspector, the chunk frames and
# session server, the coalescing segmenter).
stream-race:
	$(GO) vet ./...
	$(GO) test -race -timeout 10m ./internal/dsp/ ./internal/syncnet/ ./internal/core/ ./internal/serve/ ./internal/segment/

# Streaming smoke test: boot vibguardd -serve -stream, cross-check every
# streamed verdict against its batch twin, and assert the early-exit and
# VAD counters moved on /metrics.
stream-smoke:
	./scripts/stream_smoke.sh

# Per-user profile race gate: the race detector over the profile store
# (concurrent observe/evict/snapshot), the fused serve path, and the
# router's stream-relay abort — the layers the profile feature crosses.
profile-race:
	$(GO) vet ./...
	$(GO) test -race -timeout 10m ./internal/profile/ ./internal/serve/ ./internal/router/ ./internal/core/

# Per-user profile smoke test: boot vibguardd -profiles, assert the
# second calibration pass hits the threshold cache, fused scores
# reproduce bit-for-bit, and the store snapshot round-trips.
profile-smoke:
	./scripts/profile_smoke.sh

# Time-to-verdict baseline: batch vs streamed arms over the trained-BRNN
# acoustic corpus at real-time pace, regenerating the checked-in
# BENCH_stream.json that EXPERIMENTS.md cites.
bench-stream:
	$(GO) run ./cmd/benchstream -out BENCH_stream.json
