#!/usr/bin/env bash
# stream_smoke.sh — streaming-pipeline smoke test (make stream-smoke).
#
# Boots vibguardd in -serve -stream mode with an ephemeral debug listener:
# every fleet session runs the batch inspection and then streams the
# identical seeded session chunk by chunk, cross-checking the verdicts.
# Asserts the stream pass finished with early exits and zero divergence,
# scrapes /metrics for the streaming counters, then stops the daemon and
# asserts it drains cleanly.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/vibguardd" ./cmd/vibguardd
"$tmp/vibguardd" -serve -stream -seed 1 -sessions 16 -wearables 8 \
    -debug-addr 127.0.0.1:0 -log-format text >"$tmp/log" 2>&1 &
pid=$!

die() {
    echo "stream-smoke: $1" >&2
    echo "--- vibguardd log ---" >&2
    cat "$tmp/log" >&2
    exit 1
}

# The daemon logs the resolved debug address before training starts.
addr=""
for _ in $(seq 1 120); do
    addr=$(sed -n 's/.*debug endpoints serving.*addr=\([0-9.:]*\).*/\1/p' "$tmp/log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before serving"
    sleep 0.5
done
[ -n "$addr" ] || die "no debug address logged"

# Wait for both passes: the batch fleet pass and the streamed cross-check.
for _ in $(seq 1 360); do
    grep -q "stream pass complete" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before finishing the stream pass"
    sleep 0.5
done
grep -q "stream pass complete" "$tmp/log" || die "stream pass did not finish"

# The batch pass must be clean (it is the reference the stream is checked
# against), and every streamed verdict must agree with it.
fleet=$(grep "fleet pass complete" "$tmp/log" | head -1)
echo "$fleet" | grep -q "failed=0" || die "fleet pass had failed sessions: $fleet"
echo "$fleet" | grep -q "mismatches=0" || die "fleet pass had verdict mismatches: $fleet"
pass=$(grep "stream pass complete" "$tmp/log" | head -1)
echo "$pass" | grep -q "stream_mismatches=0" || die "streamed verdicts diverged from batch: $pass"
echo "$pass" | grep -q "early_exits=0" && die "no session exited early: $pass"

# The streaming pipeline counters must have moved: verdict latency
# histogram, the early-exit/full-run split, and the VAD admission gate.
metrics=$(curl -fsS "http://$addr/metrics") || die "/metrics fetch failed"
for name in pipeline.time_to_verdict_seconds pipeline.early_exit \
            pipeline.full_run vad.gated_frames pipeline.stream.evals; do
    echo "$metrics" | grep -q "\"$name\"" || die "/metrics missing $name"
done
echo "$metrics" | grep -q '"pipeline.early_exit": 0' && die "early-exit counter is zero"
echo "$metrics" | grep -q '"vad.gated_frames": 0' && die "vad gate counter is zero"

kill -TERM "$pid"
for _ in $(seq 1 120); do
    grep -q "session server drained" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.5
done
grep -q "session server drained" "$tmp/log" || die "server did not log a clean drain"
wait "$pid" || die "daemon exited nonzero"
pid=""

echo "stream-smoke: ok (debug addr $addr)"
