#!/usr/bin/env bash
# profile_smoke.sh — per-user profile smoke test (make profile-smoke).
#
# Boots vibguardd in -profiles mode: the session server runs with the
# per-user profile store enabled and drives two fused two-wearable
# calibration passes per simulated user plus a fused attack session each.
# Asserts the second pass hit the worker's threshold cache (cache hits
# > 0), every fused score reproduced bit-for-bit (zero fusion
# mismatches), no session failed or produced the wrong verdict, every
# attack was flagged, and the store's snapshot round-tripped.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
cleanup() {
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/vibguardd" ./cmd/vibguardd

die() {
    echo "profile-smoke: $1" >&2
    echo "--- vibguardd log ---" >&2
    cat "$tmp/log" >&2
    exit 1
}

"$tmp/vibguardd" -profiles -seed 1 -users 4 -log-format text >"$tmp/log" 2>&1 \
    || die "daemon exited nonzero"

grep -q "profile pass complete" "$tmp/log" || die "profile pass did not finish"
pass=$(grep "profile pass complete" "$tmp/log" | head -1)

# The second calibration pass must hit the worker's per-user threshold
# cache — a cold cache on pass 2 means the profile layer is not consulted.
hits=$(echo "$pass" | sed -n 's/.*cache_hits=\([0-9]*\).*/\1/p')
[ -n "$hits" ] || die "no cache_hits field logged: $pass"
[ "$hits" -gt 0 ] || die "profile cache never hit: $pass"

# Fused verdicts must be bit-reproducible for pinned per-session seeds.
echo "$pass" | grep -q "fusion_mismatches=0" || die "fused scores diverged between passes: $pass"

echo "$pass" | grep -q "failed=0" || die "profile pass had failed sessions: $pass"
echo "$pass" | grep -q "verdict_mismatches=0" || die "profile pass had verdict mismatches: $pass"
echo "$pass" | grep -q "attacks_flagged=4" || die "fused thru-barrier attacks missed: $pass"
echo "$pass" | grep -q "snapshot_users=4" || die "profile snapshot lost users: $pass"

grep -q "session server drained" "$tmp/log" || die "server did not log a clean drain"

echo "profile-smoke: ok ($pass)"
