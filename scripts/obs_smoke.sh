#!/usr/bin/env bash
# obs_smoke.sh — observability smoke test (make obs-smoke).
#
# Boots vibguardd with an ephemeral debug listener, waits for /healthz,
# lets the scenario pass finish, then asserts that /metrics parses and
# carries nonzero Inspect stage spans and syncnet attempt counters.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/vibguardd" ./cmd/vibguardd
"$tmp/vibguardd" -seed 1 -debug-addr 127.0.0.1:0 -log-format text >"$tmp/log" 2>&1 &
pid=$!

die() {
    echo "obs-smoke: $1" >&2
    echo "--- vibguardd log ---" >&2
    cat "$tmp/log" >&2
    exit 1
}

# The daemon logs the resolved debug address before training starts.
addr=""
for _ in $(seq 1 120); do
    addr=$(sed -n 's/.*debug endpoints serving.*addr=\([0-9.:]*\).*/\1/p' "$tmp/log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before serving"
    sleep 0.5
done
[ -n "$addr" ] || die "no debug address logged"

curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' || die "/healthz not ok"

# Wait for both scenarios to run so the pipeline metrics are populated.
for _ in $(seq 1 240); do
    grep -q "scenarios complete" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before finishing scenarios"
    sleep 0.5
done
grep -q "scenarios complete" "$tmp/log" || die "scenario pass did not finish"

metrics=$(curl -fsS "http://$addr/metrics") || die "/metrics fetch failed"
for name in pipeline.stage.align pipeline.stage.segment pipeline.stage.correlate \
            core.inspect.total syncnet.client.attempts; do
    echo "$metrics" | grep -q "\"$name\"" || die "/metrics missing $name"
done
# Nonzero activity: two Inspects and at least two transport attempts.
echo "$metrics" | grep -q '"core.inspect.total": 0' && die "inspect counter is zero"
echo "$metrics" | grep -q '"syncnet.client.attempts": 0' && die "attempt counter is zero"
curl -fsS "http://$addr/debug/vars" | grep -q '"vibguard"' || die "expvar missing registry"

echo "obs-smoke: ok (debug addr $addr)"
