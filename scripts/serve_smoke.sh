#!/usr/bin/env bash
# serve_smoke.sh — session-server smoke test (make serve-smoke).
#
# Boots vibguardd in -serve mode with an ephemeral debug listener, waits
# for the concurrent fleet pass to finish, asserts every session completed
# with the expected verdict, scrapes /metrics for the serve counters, then
# stops the daemon and asserts it drains cleanly.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/vibguardd" ./cmd/vibguardd
"$tmp/vibguardd" -serve -seed 1 -sessions 32 -wearables 8 \
    -debug-addr 127.0.0.1:0 -log-format text >"$tmp/log" 2>&1 &
pid=$!

die() {
    echo "serve-smoke: $1" >&2
    echo "--- vibguardd log ---" >&2
    cat "$tmp/log" >&2
    exit 1
}

# The daemon logs the resolved debug address before training starts.
addr=""
for _ in $(seq 1 120); do
    addr=$(sed -n 's/.*debug endpoints serving.*addr=\([0-9.:]*\).*/\1/p' "$tmp/log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before serving"
    sleep 0.5
done
[ -n "$addr" ] || die "no debug address logged"

curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' || die "/healthz not ok"

# Wait for the whole concurrent burst to finish.
for _ in $(seq 1 360); do
    grep -q "fleet pass complete" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before finishing the fleet pass"
    sleep 0.5
done
grep -q "fleet pass complete" "$tmp/log" || die "fleet pass did not finish"

# Every session must come back with the right verdict: no failures, no
# mismatches, nothing lost (the default queue admits the whole burst).
pass=$(grep "fleet pass complete" "$tmp/log" | head -1)
echo "$pass" | grep -q "failed=0" || die "fleet pass had failed sessions: $pass"
echo "$pass" | grep -q "mismatches=0" || die "fleet pass had verdict mismatches: $pass"
echo "$pass" | grep -q "completed=32" || die "fleet pass lost sessions: $pass"

metrics=$(curl -fsS "http://$addr/metrics") || die "/metrics fetch failed"
for name in serve.sessions.accepted serve.sessions.completed serve.queue.depth \
            serve.session.latency_seconds syncnet.client.attempts; do
    echo "$metrics" | grep -q "\"$name\"" || die "/metrics missing $name"
done
echo "$metrics" | grep -q '"serve.sessions.accepted": 0' && die "accepted counter is zero"
echo "$metrics" | grep -q '"serve.sessions.completed": 0' && die "completed counter is zero"

# Stop the daemon: the server must drain (in-flight done, listener closed)
# before the process exits.
kill -TERM "$pid"
for _ in $(seq 1 120); do
    grep -q "session server drained" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.5
done
grep -q "session server drained" "$tmp/log" || die "server did not log a clean drain"
wait "$pid" || die "daemon exited nonzero"
pid=""

echo "serve-smoke: ok (debug addr $addr)"
