#!/usr/bin/env bash
# route_smoke.sh — multi-node routing smoke test (make route-smoke).
#
# Boots vibguardd in -route mode with 3 in-process nodes behind the
# consistent-hash router, hard-kills node 1 once a quarter of the burst
# has resolved, and asserts: sessions completed on the survivors, zero
# verdict mismatches, zero untyped failures (node-loss errors are typed
# and expected), and a clean router-then-nodes drain on exit.
set -euo pipefail

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/vibguardd" ./cmd/vibguardd
"$tmp/vibguardd" -route -nodes 3 -chaos-kill 1 -seed 1 -sessions 32 \
    -wearables 8 -log-format text >"$tmp/log" 2>&1 &
pid=$!

die() {
    echo "route-smoke: $1" >&2
    echo "--- vibguardd log ---" >&2
    cat "$tmp/log" >&2
    exit 1
}

# Wait for the whole burst (training + 32 two-hop sessions + chaos kill).
for _ in $(seq 1 360); do
    grep -q "route pass complete" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || die "daemon exited before finishing the route pass"
    sleep 0.5
done
grep -q "route pass complete" "$tmp/log" || die "route pass did not finish"

# The kill must actually have happened mid-burst...
grep -q "chaos: killing node" "$tmp/log" || die "chaos kill never fired"
# ...and the router must have demoted the victim with a typed transition.
grep -q 'node transition.*node=node1.*to=down' "$tmp/log" || die "victim never transitioned down"

pass=$(grep "route pass complete" "$tmp/log" | head -1)
# Survivor nodes keep completing sessions; nothing fails untyped and no
# verdict flips. Sessions on the victim surface as typed node_lost, never
# as hangs or silent losses (completed+shed+node_lost+failed == sessions
# is enforced by failed=0 + the completion check below).
echo "$pass" | grep -q "failed=0" || die "route pass had untyped failures: $pass"
echo "$pass" | grep -q "mismatches=0" || die "route pass had verdict mismatches: $pass"
echo "$pass" | grep -q "shed=0" || die "route pass shed sessions with a burst-sized queue: $pass"
completed=$(echo "$pass" | sed -n 's/.*completed=\([0-9]*\).*/\1/p')
[ -n "$completed" ] && [ "$completed" -gt 0 ] || die "no session completed: $pass"

# The daemon exits through the rolling-restart drain order.
for _ in $(seq 1 120); do
    grep -q "nodes drained" "$tmp/log" && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.5
done
grep -q "router drained" "$tmp/log" || die "router did not log a clean drain"
grep -q "nodes drained" "$tmp/log" || die "nodes did not log a clean drain"
wait "$pid" || die "daemon exited nonzero"
pid=""

echo "route-smoke: ok ($pass)"
