package vibguard

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus ablations of the design choices DESIGN.md calls
// out. Each benchmark runs the full experiment and reports the headline
// metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's result set. The dataset sizes here are the
// "quick" tier; cmd/benchgen runs the full tier and EXPERIMENTS.md records
// the output.

import (
	"math/rand"
	"testing"

	"vibguard/internal/attack"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/eval"
	"vibguard/internal/phoneme"
	"vibguard/internal/selection"
	"vibguard/internal/sensing"
)

// benchFigCfg keeps a single benchmark iteration around 10-20s.
func benchFigCfg() eval.FigureConfig {
	return eval.FigureConfig{Participants: 6, CommandsPerUser: 3, AttacksPerKind: 18, Seed: 1}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		entries, err := eval.TableI(10, 1)
		if err != nil {
			b.Fatal(err)
		}
		total, succ := 0, 0
		for _, e := range entries {
			if e.Tested {
				total += e.Attempts
				succ += e.Successes
			}
		}
		b.ReportMetric(float64(succ)/float64(total)*100, "success%")
	}
}

func BenchmarkTableII(b *testing.B) {
	cfg := selection.DefaultConfig()
	cfg.SpeakerCount, cfg.SegmentsPerSpeaker = 4, 2
	for i := 0; i < b.N; i++ {
		res, err := selection.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Selected)), "selected")
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := eval.Figure3([]string{"ae", "v"}, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Report the high-band attenuation of /ae/ in dB.
		var hiB, hiA float64
		for k, f := range cmps[0].Freqs {
			if f > 500 {
				hiB += cmps[0].Before[k]
				hiA += cmps[0].After[k]
			}
		}
		b.ReportMetric(hiB/hiA, "highband-atten-x")
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := eval.Figure4([]string{"ae", "v"}, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		var before, after float64
		for k, f := range cmps[0].Freqs {
			if f > 5 {
				before += cmps[0].Before[k]
				after += cmps[0].After[k]
			}
		}
		b.ReportMetric(before/after, "vib-atten-x")
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := selection.DefaultConfig()
	cfg.SpeakerCount, cfg.SegmentsPerSpeaker = 4, 2
	for i := 0; i < b.N; i++ {
		res, err := selection.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		er := res.Stats["er"]
		if !er.Sensitive() {
			b.Fatal("/er/ must be barrier-effect sensitive")
		}
		b.ReportMetric(er.QUserMin/res.Alpha, "er-margin-x")
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		freqs, power, err := eval.Figure7(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		var low, lowN, rest, restN float64
		for k, f := range freqs {
			if f > 0 && f <= 5 {
				low += power[k]
				lowN++
			} else if f > 5 {
				rest += power[k]
				restN++
			}
		}
		b.ReportMetric((low/lowN)/(rest/restN), "artifact-x")
	}
}

func BenchmarkPhonemeDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		direct, thru, err := eval.DetectionAccuracy(24, 2, 6, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(direct*100, "direct-acc%")
		b.ReportMetric(thru*100, "barrier-acc%")
	}
}

func benchFigure9(b *testing.B, kind attack.Kind) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sums, err := eval.Figure9(kind, benchFigCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sums[0].EER*100, "audio-EER%")
		b.ReportMetric(sums[1].EER*100, "vib-EER%")
		b.ReportMetric(sums[2].EER*100, "full-EER%")
		b.ReportMetric(sums[2].AUC, "full-AUC")
	}
}

func BenchmarkFigure9Random(b *testing.B)    { benchFigure9(b, attack.Random) }
func BenchmarkFigure9Replay(b *testing.B)    { benchFigure9(b, attack.Replay) }
func BenchmarkFigure9Synthesis(b *testing.B) { benchFigure9(b, attack.Synthesis) }
func BenchmarkFigure10Hidden(b *testing.B)   { benchFigure9(b, attack.HiddenVoice) }

func BenchmarkFigure11aVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.Figure11a(benchFigCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Method == detector.MethodFull && c.Label == "85dB" {
				b.ReportMetric(c.EER*100, "full-85dB-EER%")
			}
		}
	}
}

func BenchmarkFigure11bMaterial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.Figure11b(benchFigCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, c := range cells {
			if c.EER > worst {
				worst = c.EER
			}
		}
		b.ReportMetric(worst*100, "worst-EER%")
	}
}

func BenchmarkFigure11cDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.Figure11c(benchFigCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, c := range cells {
			if c.EER > worst {
				worst = c.EER
			}
		}
		b.ReportMetric(worst*100, "worst-EER%")
	}
}

func BenchmarkFigure11dRooms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.Figure11d(benchFigCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, c := range cells {
			if c.EER > worst {
				worst = c.EER
			}
		}
		b.ReportMetric(worst*100, "worst-EER%")
	}
}

// --- Ablations of the design choices called out in DESIGN.md ---

// ablationEER measures the full system's replay-attack EER under a
// modified sensing configuration, scored on the parallel engine.
func ablationEER(b *testing.B, mutate func(*sensing.Config)) {
	b.Helper()
	cfg := benchFigCfg()
	ds, err := eval.BuildDataset(eval.DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Kinds:           []attack.Kind{attack.Replay},
		Conditions:      eval.StandardConditions(),
		Seed:            cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	provider := &eval.OracleProvider{Selected: selection.CanonicalSelected()}
	for i := 0; i < b.N; i++ {
		sc, err := eval.NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 99,
			eval.WithSensing(mutate))
		if err != nil {
			b.Fatal(err)
		}
		sum, err := sc.ScoreDataset("ablation", ds.Legit, ds.Attacks[attack.Replay])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.EER*100, "EER%")
	}
}

func BenchmarkAblationBaseline(b *testing.B) {
	ablationEER(b, nil)
}

func BenchmarkAblationNoCrop(b *testing.B) {
	ablationEER(b, func(c *sensing.Config) { c.CropHz = 0; c.HighPassHz = 0 })
}

func BenchmarkAblationNoNormalize(b *testing.B) {
	ablationEER(b, func(c *sensing.Config) { c.Normalize = false; c.BinStandardize = false })
}

func BenchmarkAblationWindow32(b *testing.B) {
	ablationEER(b, func(c *sensing.Config) { c.FFTSize = 32; c.HopSize = 8 })
}

func BenchmarkAblationWindow128(b *testing.B) {
	ablationEER(b, func(c *sensing.Config) { c.FFTSize = 128; c.HopSize = 32 })
}

// BenchmarkAblationNoSync measures the cost of skipping the Eq. (5)
// synchronization: the wearable recording keeps its network-delay offset.
func BenchmarkAblationNoSync(b *testing.B) {
	cfg := benchFigCfg()
	ds, err := eval.BuildDataset(eval.DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Kinds:           []attack.Kind{attack.Replay},
		Conditions:      eval.StandardConditions(),
		Seed:            cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	provider := &eval.OracleProvider{Selected: selection.CanonicalSelected()}
	for i := 0; i < b.N; i++ {
		sum, err := eval.EvaluateWithoutSync(ds, ds.Attacks[attack.Replay], device.NewFossilGen5(), provider, 99)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sum.EER*100, "EER%")
	}
}

// --- Micro-benchmarks of the hot pipeline stages ---

func BenchmarkPipelineScore(b *testing.B) {
	gen, err := eval.NewGenerator(2, 1)
	if err != nil {
		b.Fatal(err)
	}
	s, err := gen.Legit(0, 0, eval.DefaultCondition())
	if err != nil {
		b.Fatal(err)
	}
	provider := &eval.OracleProvider{Selected: selection.CanonicalSelected()}
	sc, err := eval.NewScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Score(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serial vs parallel dataset scoring (the PR-1 engine) ---

// datasetScoring builds the sweep-sized workload once.
func datasetScoring(b *testing.B) ([]*eval.Sample, []*eval.Sample) {
	b.Helper()
	cfg := benchFigCfg()
	ds, err := eval.BuildDataset(eval.DatasetConfig{
		Participants:    cfg.Participants,
		CommandsPerUser: cfg.CommandsPerUser,
		AttacksPerKind:  cfg.AttacksPerKind,
		Kinds:           []attack.Kind{attack.Replay},
		Seed:            cfg.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds.Legit, ds.Attacks[attack.Replay]
}

// BenchmarkDatasetScoringSerial scores the workload on the sequential
// Scorer; BenchmarkDatasetScoringParallel on the worker pool. The score
// vectors are bit-identical; only throughput differs.
func BenchmarkDatasetScoringSerial(b *testing.B) {
	legit, attacks := datasetScoring(b)
	provider := &eval.OracleProvider{Selected: selection.CanonicalSelected()}
	sc, err := eval.NewScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := len(legit) + len(attacks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.ScoreAll(legit); err != nil {
			b.Fatal(err)
		}
		if _, err := sc.ScoreAll(attacks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkDatasetScoringParallel(b *testing.B) {
	legit, attacks := datasetScoring(b)
	provider := &eval.OracleProvider{Selected: selection.CanonicalSelected()}
	sc, err := eval.NewParallelScorer(detector.MethodFull, device.NewFossilGen5(), provider, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := len(legit) + len(attacks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.ScoreAll(legit); err != nil {
			b.Fatal(err)
		}
		if _, err := sc.ScoreAll(attacks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkCrossDomainSensing(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := device.NewFossilGen5()
	synth, err := phoneme.NewSynthesizer(phoneme.NewStudioVoicePool(1, 1)[0])
	if err != nil {
		b.Fatal(err)
	}
	utt, err := synth.Synthesize(phoneme.Commands()[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.SenseVibration(utt.Samples, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions beyond the paper's headline figures ---

// BenchmarkWearableComparison extends the device study: the full system's
// replay-attack EER on both smartwatch models.
func BenchmarkWearableComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.WearableComparison(benchFigCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Summary.EER*100, "fossil-EER%")
		b.ReportMetric(cells[1].Summary.EER*100, "moto-EER%")
	}
}

// BenchmarkBodyMotion validates the sub-5Hz crop's rejection of wearer
// body-motion interference.
func BenchmarkBodyMotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := eval.BodyMotionRobustness(benchFigCfg(), []float64{0, 0.05})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Summary.EER*100, "still-EER%")
		b.ReportMetric(cells[1].Summary.EER*100, "moving-EER%")
	}
}
