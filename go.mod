module vibguard

go 1.22
