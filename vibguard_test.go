package vibguard

import (
	"bytes"
	"math/rand"
	"testing"

	"vibguard/internal/acoustics"
)

func TestFacadeAccessors(t *testing.T) {
	if len(VADevices()) != 4 {
		t.Error("want 4 VA devices")
	}
	if len(Rooms()) != 4 {
		t.Error("want 4 rooms")
	}
	if len(Commands()) != 20 {
		t.Error("want 20 commands")
	}
	if len(WakeWords()) != 3 {
		t.Error("want 3 wake words")
	}
	if len(SelectedPhonemes()) != 31 {
		t.Error("want 31 selected phonemes")
	}
	if NewFossilGen5().Name == NewMoto360().Name {
		t.Error("wearable names collide")
	}
}

func TestEndToEndDefenseViaFacade(t *testing.T) {
	// Full public-API flow: synthesize a command, record it on both
	// devices, run the defense with ground-truth spans.
	voices := NewVoicePool(2, 1)
	synth, err := NewSynthesizer(voices[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	room := Rooms()[0]
	transmit := func(spl, dist float64, thru bool) []float64 {
		p, err := room.Transmit(utt.Samples, PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru, SampleRate: SampleRate,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	legitVA := transmit(72, 1.5, false)
	legitWear := SimulateNetworkDelay(transmit(72, 0.3, false), 0.1, rng)
	atkVA := transmit(80, 2.1, true)
	atkWear := SimulateNetworkDelay(transmit(80, 2.4, true), 0.08, rng)

	defense, err := NewDefense(Options{
		Segmenter: StaticSegmenter(OracleSpans(utt, SelectedPhonemes())),
	})
	if err != nil {
		t.Fatal(err)
	}
	legit, err := defense.Inspect(legitVA, legitWear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if legit.Attack {
		t.Errorf("legit flagged (score %v)", legit.Score)
	}
	atk, err := defense.Inspect(atkVA, atkWear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !atk.Attack {
		t.Errorf("attack missed (score %v)", atk.Score)
	}
}

func TestNewDefenseTrainsDetectorByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("BRNN training is a few seconds")
	}
	defense, err := NewDefense(Options{TrainSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if defense.Method() != MethodFull {
		t.Error("default method should be MethodFull")
	}
}

func TestTrainPhonemeDetectorDefaults(t *testing.T) {
	det, err := TrainPhonemeDetector(DetectorTraining{HiddenDim: 8, Voices: 2, CommandsPerVoice: 3, Epochs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !det.Selected("er") || det.Selected("s") {
		t.Error("selected set wrong")
	}
}

func TestAlignRecordingsFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	synth, err := NewSynthesizer(NewVoicePool(1, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(Commands()[1])
	if err != nil {
		t.Fatal(err)
	}
	wear := SimulateNetworkDelay(utt.Samples, 0.1, rng)
	_, tau, err := AlignRecordings(utt.Samples, wear, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tau < 1500 || tau > 1700 {
		t.Errorf("tau = %d, want ~1600", tau)
	}
}

func TestAttackerViaFacade(t *testing.T) {
	a := NewAttacker(1)
	synth, err := NewSynthesizer(NewVoicePool(1, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	utt, err := synth.Synthesize(Commands()[0])
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.ReplayAttack(utt.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("empty attack")
	}
	// Barrier application through the facade type.
	barrier := acoustics.GlassWindow
	_ = Barrier(barrier)
}

func TestWAVFacadeRoundTrip(t *testing.T) {
	path := t.TempDir() + "/x.wav"
	in := []float64{0, 0.5, -0.5}
	if err := WriteWAV(path, in, 16000); err != nil {
		t.Fatal(err)
	}
	out, rate, err := ReadWAV(path)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 16000 || len(out) != 3 {
		t.Errorf("rate %d, %d samples", rate, len(out))
	}
}

func TestDetectorSaveLoadFacade(t *testing.T) {
	det, err := TrainPhonemeDetector(DetectorTraining{HiddenDim: 8, Voices: 2, CommandsPerVoice: 2, Epochs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadPhonemeDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Selected("er") {
		t.Error("restored detector selected set wrong")
	}
	// The restored detector plugs into a Defense as a segmenter.
	if _, err := NewDefense(Options{Segmenter: BRNNSegmenter(restored)}); err != nil {
		t.Fatal(err)
	}
}
