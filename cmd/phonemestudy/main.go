// Command phonemestudy runs the offline barrier-effect-sensitive phoneme
// selection study of Section V-A and prints the per-phoneme statistics,
// the two criteria, and the resulting 31-phoneme set.
//
// Usage:
//
//	phonemestudy [-barrier glass|wood] [-speakers N] [-segments N]
package main

import (
	"flag"
	"fmt"
	"os"

	"vibguard/internal/acoustics"
	"vibguard/internal/phoneme"
	"vibguard/internal/selection"
)

func main() {
	barrierName := flag.String("barrier", "glass", "barrier material for Criterion I: glass or wood")
	speakers := flag.Int("speakers", 10, "number of corpus speakers")
	segments := flag.Int("segments", 5, "segments per speaker and SPL")
	flag.Parse()
	if err := run(*barrierName, *speakers, *segments); err != nil {
		fmt.Fprintln(os.Stderr, "phonemestudy:", err)
		os.Exit(1)
	}
}

func run(barrierName string, speakers, segments int) error {
	cfg := selection.DefaultConfig()
	cfg.SpeakerCount = speakers
	cfg.SegmentsPerSpeaker = segments
	switch barrierName {
	case "glass":
		cfg.Barrier = acoustics.GlassWindow
	case "wood":
		cfg.Barrier = acoustics.WoodenDoor
	default:
		return fmt.Errorf("unknown barrier %q (want glass or wood)", barrierName)
	}
	fmt.Printf("Barrier-effect-sensitive phoneme selection (Section V-A)\n")
	fmt.Printf("barrier: %s, alpha: %.4f, %d speakers x %d segments x %v dB SPL\n\n",
		cfg.Barrier.Name, cfg.Alpha, cfg.SpeakerCount, cfg.SegmentsPerSpeaker, cfg.SPLs)

	res, err := selection.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %6s %12s %12s %5s %5s %s\n",
		"sym", "count", "maxQ3(adv)", "minQ3(user)", "CritI", "CritII", "selected")
	for _, spec := range phoneme.All() {
		s := res.Stats[spec.Symbol]
		mark := ""
		if s.Sensitive() {
			mark = "  *"
		}
		fmt.Printf("%-4s %6d %12.5f %12.5f %5v %5v %s\n",
			spec.Symbol, spec.Appearances, s.QAdvMax, s.QUserMin, s.PassI, s.PassII, mark)
	}
	fmt.Printf("\nselected %d of %d phonemes:\n%v\n", len(res.Selected), phoneme.Count(), res.Selected)
	return nil
}
