// Command vibguardd demonstrates the distributed deployment of the
// defense: a wearable agent serves recordings over a real TCP connection
// (the paper's WiFi link), and the VA side triggers it upon a wake word,
// aligns the recordings with Eq. (5), and runs the full detection
// pipeline on a simulated legitimate command and a simulated thru-barrier
// replay attack.
//
// The VA side fetches recordings through the hardened syncnet client:
// bounded retries with exponential backoff and per-attempt deadlines, so a
// flaky WiFi link degrades to a typed error instead of a hang.
//
// Usage:
//
//	vibguardd [-addr 127.0.0.1:0] [-spl 80] [-retries 4]
//	          [-retry-base 25ms] [-retry-max 500ms]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"vibguard"
	"vibguard/internal/acoustics"
	"vibguard/internal/syncnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "wearable agent listen address")
	attackSPL := flag.Float64("spl", 80, "attack playback level in dB SPL")
	retries := flag.Int("retries", 4, "total transport attempts per recording request")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "backoff before the second attempt")
	retryMax := flag.Duration("retry-max", 500*time.Millisecond, "cap on the exponential backoff")
	flag.Parse()
	policy := syncnet.DefaultRetryPolicy()
	policy.MaxAttempts = *retries
	policy.BaseDelay = *retryBase
	policy.MaxDelay = *retryMax
	if err := run(*addr, *attackSPL, policy); err != nil {
		fmt.Fprintln(os.Stderr, "vibguardd:", err)
		os.Exit(1)
	}
}

func run(addr string, attackSPL float64, policy syncnet.RetryPolicy) error {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	fmt.Println("vibguardd: training phoneme detector...")
	defense, err := vibguard.NewDefense(vibguard.Options{TrainSeed: rng.Int63()})
	if err != nil {
		return err
	}

	// Synthesize the user's command and both acoustic scenarios.
	user := vibguard.NewVoicePool(1, rng.Int63())[0]
	synth, err := vibguard.NewSynthesizer(user)
	if err != nil {
		return err
	}
	cmd := vibguard.Commands()[rng.Intn(len(vibguard.Commands()))]
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return err
	}
	room := vibguard.Rooms()[0]
	fmt.Printf("vibguardd: command %q by %s in room %s (barrier: %s)\n",
		cmd.Text, user.Name, room.Name, room.Barrier.Name)

	transmit := func(spl, dist float64, thru bool) ([]float64, error) {
		return room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru,
			SampleRate: vibguard.SampleRate,
		}, rng)
	}

	scenarios := []struct {
		name         string
		spl, vaDist  float64
		wearDist     float64
		thru         bool
		expectAttack bool
	}{
		{"legitimate command", 72, 1.5, 0.3, false, false},
		{"thru-barrier replay attack", attackSPL, 2.1, 2.4, true, true},
	}
	for _, sc := range scenarios {
		vaRec, err := transmit(sc.spl, sc.vaDist, sc.thru)
		if err != nil {
			return err
		}
		wearRec, err := transmit(sc.spl, sc.wearDist, sc.thru)
		if err != nil {
			return err
		}
		wearRec = vibguard.SimulateNetworkDelay(wearRec, 0.05+rng.Float64()*0.1, rng)

		// The wearable agent serves its recording over TCP; the VA side
		// fetches it through the hardened client, as in the real deployment.
		// Per-connection agent failures go to stderr instead of vanishing.
		agent, err := syncnet.NewWearableAgent(addr, func(uint64) ([]float64, error) {
			return wearRec, nil
		}, syncnet.WithConnErrorHandler(func(err error) {
			fmt.Fprintln(os.Stderr, "vibguardd: wearable agent:", err)
		}))
		if err != nil {
			return err
		}
		client, err := syncnet.NewReliableClient(agent.Addr(), syncnet.WithRetryPolicy(policy))
		if err != nil {
			_ = agent.Close()
			return err
		}
		fetched, err := client.RequestRecording()
		_ = client.Close()
		_ = agent.Close()
		if err != nil {
			return err
		}

		verdict, err := defense.Inspect(vaRec, fetched, rng)
		if err != nil {
			return err
		}
		status := "ACCEPTED"
		if verdict.Attack {
			status = "REJECTED (thru-barrier attack)"
		}
		ok := "as expected"
		if verdict.Attack != sc.expectAttack {
			ok = "UNEXPECTED"
		}
		fmt.Printf("  %-28s score=%+.3f sync=%4dms spans=%d -> %s (%s)\n",
			sc.name, verdict.Score,
			verdict.SyncOffset*1000/int(vibguard.SampleRate),
			len(verdict.Spans), status, ok)
	}
	return nil
}
