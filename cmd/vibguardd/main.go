// Command vibguardd demonstrates the distributed deployment of the
// defense: a wearable agent serves recordings over a real TCP connection
// (the paper's WiFi link), and the VA side triggers it upon a wake word,
// aligns the recordings with Eq. (5), and runs the full detection
// pipeline on a simulated legitimate command and a simulated thru-barrier
// replay attack.
//
// The VA side fetches recordings through the hardened syncnet client:
// bounded retries with exponential backoff and per-attempt deadlines, so a
// flaky WiFi link degrades to a typed error instead of a hang. One agent
// and one client serve the whole scenario pass — the wearable link is a
// persistent session, not a per-command connection.
//
// With -serve the daemon instead boots the session-oriented detection
// server (internal/serve) against a simulated wearable fleet and drives a
// burst of concurrent sessions through its TCP front-end; see serve.go.
//
// With -debug-addr the daemon serves its observability surface over HTTP
// (/metrics pipeline counters and stage-latency quantiles as JSON,
// /healthz, /debug/vars, /debug/pprof) and stays alive after the scenario
// pass until SIGINT/SIGTERM, so the endpoints remain scrapeable.
//
// Runs are reproducible: -seed pins every random choice, and the chosen
// seed (time-derived when the flag is 0) is always logged at startup so
// any run can be replayed.
//
// Usage:
//
//	vibguardd [-addr 127.0.0.1:0] [-spl 80] [-retries 4]
//	          [-retry-base 25ms] [-retry-max 500ms]
//	          [-seed 0] [-debug-addr 127.0.0.1:6060] [-log-format text]
//	vibguardd -serve [-serve-addr 127.0.0.1:0] [-sessions 64]
//	          [-wearables 8] [-serve-workers 0] [-queue-depth 0]
//	          [-stream] [-chunk-ms 100]
//	vibguardd -route [-nodes 3] [-chaos-kill -1] [-serve-addr 127.0.0.1:0]
//	          [-sessions 48] [-wearables 8]
//	vibguardd -profiles [-users 4] [-serve-addr 127.0.0.1:0]
//	          [-serve-workers 1]
//
// With -route the daemon boots N in-process detection nodes behind the
// consistent-hash session router (internal/router) and drives the burst
// through the router's multiplexed TCP front-door; -chaos-kill hard-kills
// one node mid-burst to demonstrate typed node-loss errors and failover.
//
// With -profiles the daemon boots the session server with the per-user
// profile store enabled and drives two calibration passes of fused
// two-wearable sessions per simulated user: the second pass must hit the
// worker's threshold cache and reproduce every fused score bit-for-bit,
// and the store round-trips through its snapshot file; see profiles.go.
//
// With -serve -stream each session additionally runs through the chunked
// streaming protocol: audio crosses the wire in -chunk-ms chunks and the
// server may answer with an early verdict before the recording ends. The
// pass cross-checks every streamed verdict against the batch verdict of
// the identical seeded session and reports the early-exit count.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"vibguard"
	"vibguard/internal/acoustics"
	"vibguard/internal/obs"
	"vibguard/internal/syncnet"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "wearable agent listen address")
	attackSPL := flag.Float64("spl", 80, "attack playback level in dB SPL")
	retries := flag.Int("retries", 4, "total transport attempts per recording request")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "backoff before the second attempt")
	retryMax := flag.Duration("retry-max", 500*time.Millisecond, "cap on the exponential backoff")
	seed := flag.Int64("seed", 0, "RNG seed; 0 derives one from the clock (the seed is always logged, so any run can be replayed with -seed)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (empty = off)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	serveMode := flag.Bool("serve", false, "run the session-oriented detection server against a simulated wearable fleet")
	serveAddr := flag.String("serve-addr", "127.0.0.1:0", "session front-end listen address (-serve / -route)")
	sessions := flag.Int("sessions", 64, "concurrent sessions to fire at the server (-serve / -route)")
	wearables := flag.Int("wearables", 8, "simulated wearable fleet size (-serve / -route)")
	serveWorkers := flag.Int("serve-workers", 0, "detection worker pool size, 0 = GOMAXPROCS (-serve / -route)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue depth, 0 = sized so the demo burst is never shed (-serve / -route)")
	streamMode := flag.Bool("stream", false, "stream each session's audio in chunks and cross-check early verdicts against the batch pipeline (-serve)")
	chunkMs := flag.Int("chunk-ms", 100, "streamed chunk duration in milliseconds (-serve -stream)")
	routeMode := flag.Bool("route", false, "boot N in-process serve nodes behind the consistent-hash router and drive the burst through its front-door")
	nodeCount := flag.Int("nodes", 3, "serve node count behind the router (-route)")
	chaosKill := flag.Int("chaos-kill", -1, "node index to hard-kill mid-burst, -1 = none (-route)")
	profileMode := flag.Bool("profiles", false, "run the session server with the per-user profile store and drive two fused multi-wearable calibration passes")
	profileUsers := flag.Int("users", 4, "simulated wearable-paired user count (-profiles)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vibguardd:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	policy := syncnet.DefaultRetryPolicy()
	policy.MaxAttempts = *retries
	policy.BaseDelay = *retryBase
	policy.MaxDelay = *retryMax

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	logger.Info("starting", "seed", *seed, "spl", *attackSPL, "retries", *retries, "serve", *serveMode, "route", *routeMode)

	if *profileMode {
		opts := profileOptions{
			addr:      *serveAddr,
			users:     *profileUsers,
			workers:   *serveWorkers,
			attackSPL: *attackSPL,
		}
		if err := runProfiles(logger, opts, *debugAddr, *seed); err != nil {
			logger.Error("fatal", "err", err)
			os.Exit(1)
		}
		return
	}
	if *routeMode {
		opts := routeOptions{
			addr:       *serveAddr,
			nodes:      *nodeCount,
			sessions:   *sessions,
			wearables:  *wearables,
			workers:    *serveWorkers,
			queueDepth: *queueDepth,
			attackSPL:  *attackSPL,
			chaosKill:  *chaosKill,
		}
		if err := runRoute(logger, opts, *debugAddr, *seed); err != nil {
			logger.Error("fatal", "err", err)
			os.Exit(1)
		}
		return
	}
	if *serveMode {
		opts := serveOptions{
			addr:       *serveAddr,
			sessions:   *sessions,
			wearables:  *wearables,
			workers:    *serveWorkers,
			queueDepth: *queueDepth,
			attackSPL:  *attackSPL,
			stream:     *streamMode,
			chunkMs:    *chunkMs,
		}
		if err := runServe(logger, opts, *debugAddr, *seed); err != nil {
			logger.Error("fatal", "err", err)
			os.Exit(1)
		}
		return
	}
	if err := run(logger, *addr, *debugAddr, *attackSPL, *seed, policy); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger for -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// serveDebug mounts the observability surface on debugAddr and returns the
// resolved listen address.
func serveDebug(logger *slog.Logger, debugAddr string) (string, error) {
	ln, err := net.Listen("tcp", debugAddr)
	if err != nil {
		return "", fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: obs.DebugMux(obs.Default())}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Error("debug server", "err", err)
		}
	}()
	logger.Info("debug endpoints serving",
		"addr", ln.Addr().String(),
		"endpoints", "/metrics /healthz /debug/vars /debug/pprof")
	return ln.Addr().String(), nil
}

// scenario is one acoustic situation of the demo pass: the command heard
// at the VA and at the wearable (network delay already applied).
type scenario struct {
	name         string
	vaRec        []float64
	wearRec      []float64
	expectAttack bool
}

// buildScenarios synthesizes the demo command and renders both acoustic
// scenarios up front, so the serving loop only moves recordings around.
// The synthesized utterance is returned alongside for callers that need
// its ground-truth phoneme alignment.
func buildScenarios(logger *slog.Logger, rng *rand.Rand, attackSPL float64) ([]scenario, *vibguard.Utterance, error) {
	user := vibguard.NewVoicePool(1, rng.Int63())[0]
	synth, err := vibguard.NewSynthesizer(user)
	if err != nil {
		return nil, nil, err
	}
	cmd := vibguard.Commands()[rng.Intn(len(vibguard.Commands()))]
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return nil, nil, err
	}
	room := vibguard.Rooms()[0]
	logger.Info("scenario setup",
		"command", cmd.Text, "speaker", user.Name,
		"room", room.Name, "barrier", room.Barrier.Name)

	transmit := func(spl, dist float64, thru bool) ([]float64, error) {
		return room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru,
			SampleRate: vibguard.SampleRate,
		}, rng)
	}
	specs := []struct {
		name         string
		spl, vaDist  float64
		wearDist     float64
		thru         bool
		expectAttack bool
	}{
		{"legitimate command", 72, 1.5, 0.3, false, false},
		{"thru-barrier replay attack", attackSPL, 2.1, 2.4, true, true},
	}
	out := make([]scenario, 0, len(specs))
	for _, sp := range specs {
		vaRec, err := transmit(sp.spl, sp.vaDist, sp.thru)
		if err != nil {
			return nil, nil, err
		}
		wearRec, err := transmit(sp.spl, sp.wearDist, sp.thru)
		if err != nil {
			return nil, nil, err
		}
		wearRec = vibguard.SimulateNetworkDelay(wearRec, 0.05+rng.Float64()*0.1, rng)
		out = append(out, scenario{name: sp.name, vaRec: vaRec, wearRec: wearRec, expectAttack: sp.expectAttack})
	}
	return out, utt, nil
}

// stagedAgent starts one wearable agent whose served recording can be
// swapped between requests, so the whole scenario pass shares a single
// agent and a single client connection instead of redialing per command.
func stagedAgent(logger *slog.Logger, addr string) (*syncnet.WearableAgent, func([]float64), error) {
	var staged atomic.Value // []float64
	agent, err := syncnet.NewWearableAgent(addr, func(uint64) ([]float64, error) {
		rec, _ := staged.Load().([]float64)
		if rec == nil {
			return nil, fmt.Errorf("no recording staged")
		}
		return rec, nil
	}, syncnet.WithConnErrorHandler(func(err error) {
		logger.Warn("wearable agent", "err", err)
	}))
	if err != nil {
		return nil, nil, err
	}
	return agent, func(rec []float64) { staged.Store(rec) }, nil
}

// scenarioPass fetches each scenario's wearable recording through the one
// shared client and inspects it, logging every verdict. stage swaps the
// recording the shared agent serves. It returns how many verdicts differed
// from the scenario's expectation.
func scenarioPass(logger *slog.Logger, defense *vibguard.Defense, client *syncnet.ReliableClient,
	stage func([]float64), scenarios []scenario, rng *rand.Rand) (int, error) {
	mismatches := 0
	for _, sc := range scenarios {
		stage(sc.wearRec)
		fetched, err := client.RequestRecording()
		if err != nil {
			return mismatches, fmt.Errorf("fetch %s: %w", sc.name, err)
		}
		verdict, err := defense.Inspect(sc.vaRec, fetched, rng)
		if err != nil {
			return mismatches, fmt.Errorf("inspect %s: %w", sc.name, err)
		}
		status := "ACCEPTED"
		if verdict.Attack {
			status = "REJECTED (thru-barrier attack)"
		}
		if verdict.Attack != sc.expectAttack {
			mismatches++
		}
		syncMs := float64(verdict.SyncOffset) * 1000 / vibguard.SampleRate
		logger.Info("verdict",
			"scenario", sc.name,
			"score", fmt.Sprintf("%+.3f", verdict.Score),
			"sync_ms", fmt.Sprintf("%.1f", syncMs),
			"spans", len(verdict.Spans),
			"status", status,
			"as_expected", verdict.Attack == sc.expectAttack)
	}
	return mismatches, nil
}

func run(logger *slog.Logger, addr, debugAddr string, attackSPL float64, seed int64, policy syncnet.RetryPolicy) error {
	rng := rand.New(rand.NewSource(seed))

	if debugAddr != "" {
		if _, err := serveDebug(logger, debugAddr); err != nil {
			return err
		}
	}

	logger.Info("training phoneme detector")
	defense, err := vibguard.NewDefense(vibguard.Options{TrainSeed: rng.Int63()})
	if err != nil {
		return err
	}

	scenarios, _, err := buildScenarios(logger, rng, attackSPL)
	if err != nil {
		return err
	}

	// One agent serves the whole pass over one TCP connection; the VA side
	// fetches every recording through one hardened client, as in the real
	// deployment where the wearable link is persistent.
	agent, stage, err := stagedAgent(logger, addr)
	if err != nil {
		return err
	}
	defer func() { _ = agent.Close() }()
	client, err := syncnet.NewReliableClient(agent.Addr(), syncnet.WithRetryPolicy(policy))
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	mismatches, err := scenarioPass(logger, defense, client, stage, scenarios, rng)
	if err != nil {
		return err
	}
	logger.Info("scenario pass complete",
		"scenarios", len(scenarios), "mismatches", mismatches,
		"conn_errors", agent.ConnErrors(), "redials", client.Redials())

	if debugAddr != "" {
		// Keep the observability surface alive until the operator stops us,
		// so /metrics can be scraped after the scenario pass.
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		logger.Info("scenarios complete; debug endpoints still serving (SIGINT/SIGTERM to exit)")
		<-stop
		logger.Info("shutting down")
	}
	return nil
}
