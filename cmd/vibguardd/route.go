package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vibguard"
	"vibguard/internal/core"
	"vibguard/internal/device"
	"vibguard/internal/router"
	"vibguard/internal/serve"
)

// routeOptions configures the -route fleet pass.
type routeOptions struct {
	addr       string
	nodes      int
	sessions   int
	wearables  int
	workers    int
	queueDepth int
	attackSPL  float64
	// chaosKill, when >= 0, hard-kills that node index (RST to every
	// peer) once a quarter of the burst has resolved — the smoke test's
	// node-death-mid-burst scenario.
	chaosKill int
}

// runRoute boots opts.nodes in-process serve nodes behind a consistent-
// hash router, fires opts.sessions concurrent sessions through the
// router's TCP front-door (multiplexed over a handful of client
// connections), optionally kills one node mid-burst, reports the pass,
// and drains router-then-nodes in the rolling-restart order.
func runRoute(logger *slog.Logger, opts routeOptions, debugAddr string, seed int64) error {
	if opts.nodes < 1 || opts.sessions < 1 || opts.wearables < 1 {
		return fmt.Errorf("-nodes, -sessions and -wearables must be >= 1")
	}
	if opts.chaosKill >= opts.nodes {
		return fmt.Errorf("-chaos-kill %d out of range for %d nodes", opts.chaosKill, opts.nodes)
	}
	if opts.queueDepth == 0 {
		// Every session may hash onto one node; size each queue for the
		// whole burst so the demo pass is never shed.
		opts.queueDepth = opts.sessions
	}
	rng := rand.New(rand.NewSource(seed))

	if debugAddr != "" {
		if _, err := serveDebug(logger, debugAddr); err != nil {
			return err
		}
	}

	// Train the BRNN once; all nodes' workers share the read-only weights,
	// exactly like -serve (and like a real fleet shipping one model).
	logger.Info("training phoneme detector")
	det, err := vibguard.TrainPhonemeDetector(vibguard.DetectorTraining{Seed: rng.Int63()})
	if err != nil {
		return err
	}
	segmenter := vibguard.BRNNSegmenter(det)

	fleet, err := buildFleet(logger, rng, opts.wearables, opts.attackSPL)
	if err != nil {
		return err
	}
	defer func() {
		for _, fw := range fleet {
			_ = fw.agent.Close()
		}
	}()

	rt := router.New(router.Config{
		ProbeInterval: 100 * time.Millisecond,
		ProbeTimeout:  time.Second,
		FailAfter:     2,
		OnTransition: func(node string, from, to router.NodeState) {
			logger.Info("node transition", "node", node, "from", from.String(), "to", to.String())
		},
	})
	nodes := make([]*serve.Server, 0, opts.nodes)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, n := range nodes {
			_ = n.Shutdown(ctx)
		}
	}()
	for i := 0; i < opts.nodes; i++ {
		srv, err := serve.NewServer(serve.Config{
			NewDefense: func() (*core.Defense, error) {
				return core.NewDefense(core.DefaultConfig(device.NewFossilGen5(), segmenter))
			},
			Workers:        opts.workers,
			QueueDepth:     opts.queueDepth,
			SessionTimeout: 2 * time.Minute,
			Seed:           seed,
		})
		if err != nil {
			return err
		}
		nodeAddr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		id := fmt.Sprintf("node%d", i)
		if err := rt.Register(id, nodeAddr); err != nil {
			return err
		}
		nodes = append(nodes, srv)
		logger.Info("node serving", "node", id, "addr", nodeAddr,
			"workers", srv.Workers(), "queue_depth", srv.QueueDepth())
	}

	addr, err := rt.Listen(opts.addr)
	if err != nil {
		return err
	}
	logger.Info("router serving", "addr", addr, "nodes", opts.nodes)

	// A handful of front-door connections carry the whole burst — the
	// protocol multiplexes concurrent sessions per connection.
	clientCount := 4
	if opts.sessions < clientCount {
		clientCount = opts.sessions
	}
	clients := make([]*serve.Client, clientCount)
	for c := range clients {
		clients[c], err = serve.DialServer(addr, 5*time.Second)
		if err != nil {
			return fmt.Errorf("front-door dial: %w", err)
		}
		defer func(c *serve.Client) { _ = c.Close() }(clients[c])
	}

	var completed, shed, nodeLost, failed, mismatches, resolved atomic.Int64
	if opts.chaosKill >= 0 {
		// Kill the victim once a quarter of the burst has resolved, so the
		// death lands mid-burst with sessions in flight on it.
		victim := nodes[opts.chaosKill]
		quarter := int64(opts.sessions / 4)
		go func() {
			for resolved.Load() < quarter {
				time.Sleep(time.Millisecond)
			}
			logger.Info("chaos: killing node", "node", fmt.Sprintf("node%d", opts.chaosKill))
			victim.Kill()
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer resolved.Add(1)
			fw := fleet[i%len(fleet)]
			v, err := clients[i%len(clients)].Inspect(serve.Request{
				UserID:       fmt.Sprintf("user%d", i%16),
				WearableAddr: fw.agent.Addr(),
				VARecording:  fw.vaRec,
				RNGSeed:      serve.SessionSeed(seed, uint64(i)),
			})
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
			case errors.Is(err, serve.ErrNodeLost):
				// Expected under -chaos-kill: the session was in flight on
				// (or routed to) the killed node. The error is typed and
				// names the node; nothing hangs.
				nodeLost.Add(1)
				var ne *serve.NodeError
				if errors.As(err, &ne) {
					logger.Info("session lost node", "session", i, "node", ne.Node)
				}
			case err != nil:
				failed.Add(1)
				logger.Error("session failed", "session", i, "err", err)
			default:
				completed.Add(1)
				if v.Attack != fw.expectAttack {
					mismatches.Add(1)
					logger.Error("verdict mismatch",
						"session", i, "attack", v.Attack, "score", v.Score, "want", fw.expectAttack)
				}
			}
		}(i)
	}
	wg.Wait()

	logger.Info("route pass complete",
		"sessions", opts.sessions,
		"completed", completed.Load(),
		"shed", shed.Load(),
		"node_lost", nodeLost.Load(),
		"failed", failed.Load(),
		"mismatches", mismatches.Load())

	if debugAddr != "" {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		logger.Info("route pass complete; debug endpoints still serving (SIGINT/SIGTERM to exit)")
		<-stop
	}

	// Rolling-restart drain order: router first (front door stops taking
	// sessions, in-flight ones finish), then each node.
	logger.Info("draining router")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		return fmt.Errorf("router drain: %w", err)
	}
	logger.Info("router drained")
	for i, n := range nodes {
		if err := n.Shutdown(ctx); err != nil {
			return fmt.Errorf("node%d drain: %w", i, err)
		}
	}
	logger.Info("nodes drained")

	if failed.Load() > 0 || mismatches.Load() > 0 {
		return fmt.Errorf("route pass: %d failed sessions, %d verdict mismatches", failed.Load(), mismatches.Load())
	}
	if opts.chaosKill < 0 && nodeLost.Load() > 0 {
		return fmt.Errorf("route pass: %d sessions lost nodes with no chaos injected", nodeLost.Load())
	}
	return nil
}
