package main

import (
	"io"
	"log/slog"
	"math/rand"
	"testing"

	"vibguard"
	"vibguard/internal/syncnet"
)

// TestScenarioPassReusesConnection pins the connection-churn fix: the
// whole scenario pass must ride one wearable agent and one hardened
// client, dialing exactly once — not a fresh agent/client per scenario —
// and the shared agent must see zero per-connection errors.
func TestScenarioPassReusesConnection(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	rng := rand.New(rand.NewSource(7))

	scenarios, utt, err := buildScenarios(logger, rng, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) < 2 {
		t.Fatalf("expected both acoustic scenarios, got %d", len(scenarios))
	}

	// A cheap defense: the scenario utterance's oracle spans instead of
	// BRNN training keep this a plumbing test, not a model test.
	spans := vibguard.OracleSpans(utt, vibguard.SelectedPhonemes())
	defense, err := vibguard.NewDefense(vibguard.Options{Segmenter: vibguard.StaticSegmenter(spans)})
	if err != nil {
		t.Fatal(err)
	}

	agent, stage, err := stagedAgent(logger, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	client, err := syncnet.NewReliableClient(agent.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	mismatches, err := scenarioPass(logger, defense, client, stage, scenarios, rng)
	if err != nil {
		t.Fatal(err)
	}
	if mismatches != 0 {
		t.Errorf("scenario pass produced %d verdict mismatches", mismatches)
	}
	if got := agent.ConnErrors(); got != 0 {
		t.Errorf("agent saw %d connection errors (last: %v), want 0", got, agent.LastConnError())
	}
	if got := client.Redials(); got != 1 {
		t.Errorf("client dialed %d times across the pass, want exactly 1 (no churn)", got)
	}
	if got := client.Attempts(); got != uint64(len(scenarios)) {
		t.Errorf("client made %d transport attempts, want %d (one per scenario, no retries)", got, len(scenarios))
	}
}
