package main

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"vibguard"
	"vibguard/internal/core"
	"vibguard/internal/device"
	"vibguard/internal/obs"
	"vibguard/internal/profile"
	"vibguard/internal/segment"
	"vibguard/internal/serve"
	"vibguard/internal/syncnet"
)

// profileOptions configures the -profiles fleet pass.
type profileOptions struct {
	addr      string
	users     int
	workers   int
	attackSPL float64
}

// profileUser is one simulated wearable-paired user of the -profiles
// pass: a watch and an earbud that both heard the same command, each with
// its own seeded network delay.
type profileUser struct {
	id     string
	watch  *syncnet.WearableAgent
	earbud *syncnet.WearableAgent
}

// profileFleet is the -profiles pass fixture: per-user legitimate agent
// pairs, one shared attack pair, and the matching VA-side recordings.
type profileFleet struct {
	users    []*profileUser
	attacker *profileUser
	legitVA  []float64
	attackVA []float64
	close    func()
}

// buildProfileFleet synthesizes one command, renders the legitimate and
// thru-barrier acoustic paths, and boots a watch+earbud agent pair per
// user (legitimate audio) plus one shared attack pair, so the pass can
// demonstrate fused detection on both kinds of sessions.
func buildProfileFleet(logger *slog.Logger, rng *rand.Rand, users int, attackSPL float64) (*profileFleet, error) {
	user := vibguard.NewVoicePool(1, rng.Int63())[0]
	synth, err := vibguard.NewSynthesizer(user)
	if err != nil {
		return nil, err
	}
	cmd := vibguard.Commands()[rng.Intn(len(vibguard.Commands()))]
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return nil, err
	}
	room := vibguard.Rooms()[0]
	logger.Info("profile fleet setup",
		"command", cmd.Text, "speaker", user.Name, "room", room.Name, "users", users)

	transmit := func(spl, dist float64, thru bool) ([]float64, error) {
		return room.Transmit(utt.Samples, vibguard.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru,
			SampleRate: vibguard.SampleRate,
		}, rng)
	}
	legitVA, err := transmit(72, 1.5, false)
	if err != nil {
		return nil, err
	}
	legitNear, err := transmit(72, 0.3, false)
	if err != nil {
		return nil, err
	}
	attackVA, err := transmit(attackSPL, 2.1, true)
	if err != nil {
		return nil, err
	}
	attackNear, err := transmit(attackSPL, 2.4, true)
	if err != nil {
		return nil, err
	}

	var agents []*syncnet.WearableAgent
	closeAll := func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}
	newWearable := func(near []float64) (*syncnet.WearableAgent, error) {
		rec := vibguard.SimulateNetworkDelay(near, 0.05+rng.Float64()*0.1, rng)
		a, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
			return rec, nil
		})
		if err != nil {
			return nil, err
		}
		agents = append(agents, a)
		return a, nil
	}

	fleet := make([]*profileUser, 0, users)
	for i := 0; i < users; i++ {
		watch, err := newWearable(legitNear)
		if err != nil {
			closeAll()
			return nil, err
		}
		earbud, err := newWearable(legitNear)
		if err != nil {
			closeAll()
			return nil, err
		}
		fleet = append(fleet, &profileUser{
			id: fmt.Sprintf("user-%d", i), watch: watch, earbud: earbud,
		})
	}
	attackWatch, err := newWearable(attackNear)
	if err != nil {
		closeAll()
		return nil, err
	}
	attackEarbud, err := newWearable(attackNear)
	if err != nil {
		closeAll()
		return nil, err
	}
	return &profileFleet{
		users:    fleet,
		attacker: &profileUser{id: "attacker", watch: attackWatch, earbud: attackEarbud},
		legitVA:  legitVA,
		attackVA: attackVA,
		close:    closeAll,
	}, nil
}

// runProfiles boots the session server with the per-user profile store
// enabled and drives two calibration passes of fused two-wearable
// sessions over a simulated user fleet through the TCP front-end: the
// first pass populates the worker's threshold cache and each user's
// profile, the second pass must hit the cache and reproduce every fused
// score bit-for-bit (same pinned per-session seed). A final fused attack
// session per user shows calibrated thresholds still reject thru-barrier
// replays, and the store round-trips through its snapshot file.
func runProfiles(logger *slog.Logger, opts profileOptions, debugAddr string, seed int64) error {
	if opts.users < 1 {
		return fmt.Errorf("-users must be >= 1")
	}
	if opts.workers <= 0 {
		// One worker by default: every session consults the same LRU, so
		// the second pass deterministically hits the cache.
		opts.workers = 1
	}
	rng := rand.New(rand.NewSource(seed))

	if debugAddr != "" {
		if _, err := serveDebug(logger, debugAddr); err != nil {
			return err
		}
	}

	logger.Info("training phoneme detector")
	det, err := vibguard.TrainPhonemeDetector(vibguard.DetectorTraining{Seed: rng.Int63()})
	if err != nil {
		return err
	}
	coal := segment.NewCoalescer(det, 0)
	defer coal.Close()

	fleet, err := buildProfileFleet(logger, rng, opts.users, opts.attackSPL)
	if err != nil {
		return err
	}
	defer fleet.close()

	store := profile.NewStore(profile.Config{})
	srv, err := serve.NewServer(serve.Config{
		NewDefense: func() (*core.Defense, error) {
			return core.NewDefense(core.DefaultConfig(device.NewFossilGen5(), coal))
		},
		Workers:        opts.workers,
		QueueDepth:     2 * opts.users,
		SessionTimeout: 2 * time.Minute,
		Seed:           seed,
		Profiles:       store,
	})
	if err != nil {
		return err
	}
	addr, err := srv.Listen(opts.addr)
	if err != nil {
		return err
	}
	logger.Info("session server serving",
		"addr", addr, "workers", srv.Workers(), "profiles", true)

	client, err := serve.DialServer(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	hits := obs.Default().Counter("profile.cache.hits")
	misses := obs.Default().Counter("profile.cache.misses")
	h0, m0 := hits.Value(), misses.Value()

	// Two identical calibration passes of fused legitimate sessions. The
	// per-session seed is pinned per user, so the fused score of pass 2
	// must reproduce pass 1 bit-for-bit — any divergence is a fusion
	// determinism bug, not acoustics.
	var failed, verdictMismatches, fusionMismatches int
	scoreBits := make(map[string]uint64, opts.users)
	for pass := 1; pass <= 2; pass++ {
		for i, u := range fleet.users {
			v, err := client.Inspect(serve.Request{
				UserID:        u.id,
				WearableAddr:  u.watch.Addr(),
				WearableAddrs: []string{u.earbud.Addr()},
				VARecording:   fleet.legitVA,
				RNGSeed:       serve.SessionSeed(seed, uint64(i)),
			})
			if err != nil {
				failed++
				logger.Error("fused session failed", "pass", pass, "user", u.id, "err", err)
				continue
			}
			if v.Attack {
				verdictMismatches++
				logger.Error("legitimate fused session flagged",
					"pass", pass, "user", u.id, "score", v.Score)
			}
			bits := math.Float64bits(v.Score)
			if pass == 1 {
				scoreBits[u.id] = bits
			} else if bits != scoreBits[u.id] {
				fusionMismatches++
				logger.Error("fused score not reproducible",
					"user", u.id, "pass1_bits", fmt.Sprintf("%x", scoreBits[u.id]),
					"pass2_bits", fmt.Sprintf("%x", bits))
			}
		}
		logger.Info("calibration pass done", "pass", pass,
			"cache_hits", hits.Value()-h0, "cache_misses", misses.Value()-m0)
	}

	// Calibrated users must still reject a fused thru-barrier replay.
	attacksFlagged := 0
	for i, u := range fleet.users {
		v, err := client.Inspect(serve.Request{
			UserID:        u.id,
			WearableAddr:  fleet.attacker.watch.Addr(),
			WearableAddrs: []string{fleet.attacker.earbud.Addr()},
			VARecording:   fleet.attackVA,
			RNGSeed:       serve.SessionSeed(seed, uint64(1000+i)),
		})
		if err != nil {
			failed++
			logger.Error("attack session failed", "user", u.id, "err", err)
			continue
		}
		if v.Attack {
			attacksFlagged++
		} else {
			verdictMismatches++
			logger.Error("fused thru-barrier attack missed", "user", u.id, "score", v.Score)
		}
	}

	// The store snapshot round-trips: save atomically, load into a fresh
	// store, same user population.
	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("vibguard-profiles-%d.snap", os.Getpid()))
	defer func() { _ = os.Remove(snapPath) }()
	if err := store.Save(snapPath); err != nil {
		return fmt.Errorf("profile snapshot save: %w", err)
	}
	restored := profile.NewStore(profile.Config{})
	if err := restored.Load(snapPath); err != nil {
		return fmt.Errorf("profile snapshot load: %w", err)
	}

	logger.Info("profile pass complete",
		"users", opts.users,
		"sessions", 3*opts.users,
		"failed", failed,
		"cache_hits", hits.Value()-h0,
		"cache_misses", misses.Value()-m0,
		"fusion_mismatches", fusionMismatches,
		"verdict_mismatches", verdictMismatches,
		"attacks_flagged", attacksFlagged,
		"snapshot_users", restored.Len())

	logger.Info("draining session server")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("session server drained")

	if failed > 0 || verdictMismatches > 0 || fusionMismatches > 0 {
		return fmt.Errorf("profile pass: %d failed, %d verdict mismatches, %d fusion mismatches",
			failed, verdictMismatches, fusionMismatches)
	}
	if restored.Len() != store.Len() {
		return fmt.Errorf("profile snapshot round-trip: %d users restored, want %d",
			restored.Len(), store.Len())
	}
	return nil
}
