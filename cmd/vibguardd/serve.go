package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"vibguard"
	"vibguard/internal/acoustics"
	"vibguard/internal/core"
	"vibguard/internal/device"
	"vibguard/internal/segment"
	"vibguard/internal/serve"
	"vibguard/internal/syncnet"
)

// serveOptions configures the -serve fleet pass.
type serveOptions struct {
	addr       string
	sessions   int
	wearables  int
	workers    int
	queueDepth int
	attackSPL  float64
	stream     bool
	chunkMs    int
}

// fleetWearable is one simulated wearable of the -serve fleet: a live TCP
// agent plus the VA-side recording of the command it heard and the verdict
// sessions against it should produce.
type fleetWearable struct {
	agent        *syncnet.WearableAgent
	vaRec        []float64
	expectAttack bool
}

// buildFleet synthesizes one command, renders the legitimate and
// thru-barrier acoustic paths, and boots n wearable agents — even indexes
// heard the legitimate command, odd indexes the replay attack — each with
// its own seeded network delay, so the fleet is replayable from the seed.
func buildFleet(logger *slog.Logger, rng *rand.Rand, n int, attackSPL float64) ([]*fleetWearable, error) {
	user := vibguard.NewVoicePool(1, rng.Int63())[0]
	synth, err := vibguard.NewSynthesizer(user)
	if err != nil {
		return nil, err
	}
	cmd := vibguard.Commands()[rng.Intn(len(vibguard.Commands()))]
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return nil, err
	}
	room := vibguard.Rooms()[0]
	logger.Info("fleet setup", "command", cmd.Text, "speaker", user.Name, "room", room.Name, "wearables", n)

	transmit := func(spl, dist float64, thru bool) ([]float64, error) {
		return room.Transmit(utt.Samples, acoustics.PathConfig{
			SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru,
			SampleRate: vibguard.SampleRate,
		}, rng)
	}
	legitVA, err := transmit(72, 1.5, false)
	if err != nil {
		return nil, err
	}
	legitNear, err := transmit(72, 0.3, false)
	if err != nil {
		return nil, err
	}
	attackVA, err := transmit(attackSPL, 2.1, true)
	if err != nil {
		return nil, err
	}
	attackNear, err := transmit(attackSPL, 2.4, true)
	if err != nil {
		return nil, err
	}

	fleet := make([]*fleetWearable, 0, n)
	for i := 0; i < n; i++ {
		attack := i%2 == 1
		near, va := legitNear, legitVA
		if attack {
			near, va = attackNear, attackVA
		}
		wear := vibguard.SimulateNetworkDelay(near, 0.05+rng.Float64()*0.1, rng)
		agent, err := syncnet.NewWearableAgent("127.0.0.1:0", func(uint64) ([]float64, error) {
			return wear, nil
		})
		if err != nil {
			for _, fw := range fleet {
				_ = fw.agent.Close()
			}
			return nil, err
		}
		fleet = append(fleet, &fleetWearable{agent: agent, vaRec: va, expectAttack: attack})
	}
	return fleet, nil
}

// runServe boots the session server against a simulated wearable fleet,
// fires opts.sessions concurrent sessions through its TCP front-end,
// reports the pass, and drains.
func runServe(logger *slog.Logger, opts serveOptions, debugAddr string, seed int64) error {
	if opts.sessions < 1 || opts.wearables < 1 {
		return fmt.Errorf("-sessions and -wearables must be >= 1")
	}
	if opts.queueDepth == 0 {
		// Size the queue for the demo burst by default; pass -queue-depth
		// explicitly to watch the admission queue shed load instead.
		opts.queueDepth = opts.sessions
	}
	rng := rand.New(rand.NewSource(seed))

	if debugAddr != "" {
		if _, err := serveDebug(logger, debugAddr); err != nil {
			return err
		}
	}

	// Train the effective-phoneme BRNN once; the trained weights are
	// read-only at inference and the detector pools its mutable inference
	// scratch per caller, so every worker's Defense shares one detector.
	logger.Info("training phoneme detector")
	det, err := vibguard.TrainPhonemeDetector(vibguard.DetectorTraining{Seed: rng.Int63()})
	if err != nil {
		return err
	}
	// All workers share one coalescer as their segmenter: sessions that
	// reach span detection together traverse the BRNN weights once per
	// timestep for the whole batch (DetectFramesBatch) instead of once
	// per session; a lone session runs alone with no added latency.
	coal := segment.NewCoalescer(det, 0)
	defer coal.Close()
	segmenter := coal

	fleet, err := buildFleet(logger, rng, opts.wearables, opts.attackSPL)
	if err != nil {
		return err
	}
	defer func() {
		for _, fw := range fleet {
			_ = fw.agent.Close()
		}
	}()

	srv, err := serve.NewServer(serve.Config{
		NewDefense: func() (*core.Defense, error) {
			return core.NewDefense(core.DefaultConfig(device.NewFossilGen5(), segmenter))
		},
		Workers:        opts.workers,
		QueueDepth:     opts.queueDepth,
		SessionTimeout: 2 * time.Minute,
		Seed:           seed,
		Stream:         core.StreamConfig{},
	})
	if err != nil {
		return err
	}
	addr, err := srv.Listen(opts.addr)
	if err != nil {
		return err
	}
	logger.Info("session server serving",
		"addr", addr, "workers", srv.Workers(), "queue_depth", srv.QueueDepth())

	chunkSamples := opts.chunkMs * int(vibguard.SampleRate) / 1000
	if chunkSamples < 1 {
		chunkSamples = 1
	}
	var completed, shed, failed, mismatches atomic.Int64
	var earlyExits, streamMismatches atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < opts.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fw := fleet[i%len(fleet)]
			client, err := serve.DialServer(addr, 5*time.Second)
			if err != nil {
				failed.Add(1)
				logger.Error("session dial", "session", i, "err", err)
				return
			}
			defer func() { _ = client.Close() }()
			req := serve.Request{
				WearableAddr: fw.agent.Addr(),
				VARecording:  fw.vaRec,
				RNGSeed:      serve.SessionSeed(seed, uint64(i)),
			}
			v, err := client.Inspect(req)
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
				return
			case err != nil:
				failed.Add(1)
				logger.Error("session failed", "session", i, "err", err)
				return
			}
			completed.Add(1)
			if v.Attack != fw.expectAttack {
				mismatches.Add(1)
				logger.Error("verdict mismatch",
					"session", i, "attack", v.Attack, "score", v.Score, "want", fw.expectAttack)
			}
			if !opts.stream {
				return
			}
			// Stream the identical seeded session and cross-check: an
			// early exit must never change the verdict the batch pipeline
			// reached on the same audio.
			sv, err := client.InspectStream(req, chunkSamples)
			switch {
			case errors.Is(err, serve.ErrOverloaded):
				shed.Add(1)
				return
			case err != nil:
				failed.Add(1)
				logger.Error("streamed session failed", "session", i, "err", err)
				return
			}
			if sv.Early {
				earlyExits.Add(1)
			}
			if sv.Attack != v.Attack {
				streamMismatches.Add(1)
				logger.Error("streamed verdict mismatch",
					"session", i, "stream_attack", sv.Attack, "early", sv.Early,
					"consumed", sv.Consumed, "batch_attack", v.Attack)
			}
		}(i)
	}
	wg.Wait()

	logger.Info("fleet pass complete",
		"sessions", opts.sessions,
		"completed", completed.Load(),
		"shed", shed.Load(),
		"failed", failed.Load(),
		"mismatches", mismatches.Load())
	if opts.stream {
		logger.Info("stream pass complete",
			"sessions", opts.sessions,
			"chunk_samples", chunkSamples,
			"early_exits", earlyExits.Load(),
			"stream_mismatches", streamMismatches.Load())
	}

	if debugAddr != "" {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		logger.Info("fleet pass complete; debug endpoints still serving (SIGINT/SIGTERM to exit)")
		<-stop
	}

	logger.Info("draining session server")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("session server drained")
	if failed.Load() > 0 || mismatches.Load() > 0 {
		return fmt.Errorf("fleet pass: %d failed sessions, %d verdict mismatches", failed.Load(), mismatches.Load())
	}
	if streamMismatches.Load() > 0 {
		return fmt.Errorf("stream pass: %d streamed verdicts diverged from batch", streamMismatches.Load())
	}
	return nil
}
