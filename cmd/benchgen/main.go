// Command benchgen regenerates every table and figure of the paper's
// evaluation and prints them as text tables. See EXPERIMENTS.md for the
// recorded output and the paper-vs-measured comparison.
//
// Usage:
//
//	benchgen [-quick] [-only fig9,table1,...] [-workers n]
//
// -quick shrinks the datasets (~4x faster, noisier metrics).
// -only runs a comma-separated subset: table1, table2, fig3, fig4, fig6,
// fig7, accuracy, fig9, fig10, fig11a, fig11b, fig11c, fig11d, attacks
// (the per-attack defense report over all seven kinds, including the
// adaptive-adversary extensions).
// -workers sets the scoring worker-pool size (default GOMAXPROCS; the
// results are bit-identical for any value, only wall time changes).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vibguard/internal/attack"
	"vibguard/internal/eval"
	"vibguard/internal/phoneme"
	"vibguard/internal/selection"
)

func main() {
	quick := flag.Bool("quick", false, "smaller datasets, faster run")
	only := flag.String("only", "", "comma-separated experiment subset")
	workers := flag.Int("workers", 0, "scoring worker-pool size (0 = GOMAXPROCS)")
	flag.Parse()
	eval.SetDefaultWorkers(*workers)
	if err := run(*quick, *only); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(quick bool, only string) error {
	wanted := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			wanted[name] = true
		}
	}
	want := func(name string) bool { return len(wanted) == 0 || wanted[name] }

	figCfg := eval.DefaultFigureConfig()
	tableAttempts := 10
	selCfg := selection.DefaultConfig()
	accuracyVoices, accuracyCmds, accuracyEpochs, accuracyHidden := 3, 10, 6, 48
	if quick {
		figCfg = eval.FigureConfig{Participants: 6, CommandsPerUser: 3, AttacksPerKind: 18, Seed: 1}
		selCfg.SpeakerCount, selCfg.SegmentsPerSpeaker = 4, 2
		accuracyVoices, accuracyCmds, accuracyEpochs, accuracyHidden = 2, 6, 4, 24
	}

	start := time.Now()
	if want("table1") {
		if err := runTableI(tableAttempts); err != nil {
			return err
		}
	}
	if want("table2") {
		runTableII()
	}
	if want("fig3") {
		if err := runSpectra("Figure 3 (audio domain)", eval.Figure3, 20); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := runSpectra("Figure 4 (vibration domain)", eval.Figure4, 20); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := runFigure6(selCfg); err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := runFigure7(); err != nil {
			return err
		}
	}
	if want("accuracy") {
		if err := runAccuracy(accuracyHidden, accuracyVoices, accuracyCmds, accuracyEpochs); err != nil {
			return err
		}
	}
	if want("fig9") || want("fig10") {
		kinds := []attack.Kind{}
		if want("fig9") {
			kinds = append(kinds, attack.Random, attack.Replay, attack.Synthesis)
		}
		if want("fig10") {
			kinds = append(kinds, attack.HiddenVoice)
		}
		if err := runROCFigures(kinds, figCfg); err != nil {
			return err
		}
	}
	if want("fig11a") {
		if err := runFigure11("Figure 11a: EER vs attack volume (replay attack)", eval.Figure11a, figCfg); err != nil {
			return err
		}
	}
	if want("fig11b") {
		if err := runFigure11("Figure 11b: EER vs barrier material (full system)", eval.Figure11b, figCfg); err != nil {
			return err
		}
	}
	if want("fig11c") {
		if err := runFigure11("Figure 11c: EER vs barrier-to-VA distance (full system)", eval.Figure11c, figCfg); err != nil {
			return err
		}
	}
	if want("fig11d") {
		if err := runFigure11("Figure 11d: EER per room (full system)", eval.Figure11d, figCfg); err != nil {
			return err
		}
	}
	if want("attacks") {
		if err := runAttackCorpus(figCfg); err != nil {
			return err
		}
	}
	fmt.Printf("\nbenchgen finished in %v\n", time.Since(start).Round(time.Second))
	return nil
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func runTableI(attempts int) error {
	header("Table I: thru-barrier attack success against VA devices")
	entries, err := eval.TableI(attempts, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-13s %-22s %6s %s\n", "Device", "Barrier", "Attack", "SPL", "Success")
	for _, e := range entries {
		result := fmt.Sprintf("%d/%d", e.Successes, e.Attempts)
		if !e.Tested {
			result = "-"
		}
		fmt.Printf("%-12s %-13s %-22s %4.0fdB %s\n", e.Device, e.Barrier, e.Attack, e.SPL, result)
	}
	return nil
}

func runTableII() {
	header("Table II: common TIMIT phonemes (selected phonemes marked *)")
	selected := selection.CanonicalSelected()
	col := 0
	for _, spec := range phoneme.All() {
		mark := " "
		if selected[spec.Symbol] {
			mark = "*"
		}
		fmt.Printf("%s%-3s %4d   ", mark, spec.Symbol, spec.Appearances)
		if col++; col%6 == 0 {
			fmt.Println()
		}
	}
	fmt.Printf("\nselected: %d of %d\n", len(selected), phoneme.Count())
}

func runSpectra(title string, gen func([]string, int, int64) ([]eval.SpectrumComparison, error), samples int) error {
	header(title + ": /ae/ and /v/ before vs after the glass window")
	cmps, err := gen([]string{"ae", "v"}, samples, 1)
	if err != nil {
		return err
	}
	for _, cmp := range cmps {
		fmt.Printf("\n/%s/\n%10s %12s %12s %8s\n", cmp.Symbol, "freq(Hz)", "before", "after", "ratio")
		step := len(cmp.Freqs) / 12
		if step < 1 {
			step = 1
		}
		for k := 0; k < len(cmp.Freqs); k += step {
			ratio := 0.0
			if cmp.Before[k] > 0 {
				ratio = cmp.After[k] / cmp.Before[k]
			}
			fmt.Printf("%10.1f %12.5f %12.5f %8.3f\n", cmp.Freqs[k], cmp.Before[k], cmp.After[k], ratio)
		}
	}
	return nil
}

func runFigure6(cfg selection.Config) error {
	header("Figure 6: third-quartile vibration magnitude of /er/ (phoneme selection)")
	res, err := selection.Run(cfg)
	if err != nil {
		return err
	}
	er := res.Stats["er"]
	fmt.Printf("alpha = %.4f\n", res.Alpha)
	fmt.Printf("%6s %14s %14s\n", "bin", "Q3 thru-barrier", "Q3 direct")
	for k := 2; k < len(er.QAdv); k += 3 {
		fmt.Printf("%6.1f %14.5f %14.5f\n", float64(k)*200.0/64, er.QAdv[k], er.QUser[k])
	}
	fmt.Printf("/er/ sensitive: %v (Criterion I max %.5f < alpha; Criterion II min %.5f > alpha)\n",
		er.Sensitive(), er.QAdvMax, er.QUserMin)
	fmt.Printf("selected %d of %d phonemes: %v\n", len(res.Selected), phoneme.Count(), res.Selected)
	return nil
}

func runFigure7() error {
	header("Figure 7: accelerometer response to a 500-2500Hz chirp")
	freqs, power, err := eval.Figure7(1)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s\n", "freq(Hz)", "power")
	for k := 0; k < len(freqs); k += 16 {
		fmt.Printf("%10.2f %14.6f\n", freqs[k], power[k])
	}
	var low, lowN, rest, restN float64
	for k, f := range freqs {
		if f > 0 && f <= 5 {
			low += power[k]
			lowN++
		} else if f > 5 {
			rest += power[k]
			restN++
		}
	}
	fmt.Printf("mean power 0-5Hz: %.6f, above 5Hz: %.6f (artifact ratio %.1fx)\n",
		low/lowN, rest/restN, (low/lowN)/(rest/restN))
	return nil
}

func runAccuracy(hidden, voices, cmds, epochs int) error {
	header("Section V-B: BRNN phoneme detection accuracy")
	direct, thru, err := eval.DetectionAccuracy(hidden, voices, cmds, epochs, 1)
	if err != nil {
		return err
	}
	fmt.Printf("without barrier: %.1f%%   (paper: 94%%)\n", direct*100)
	fmt.Printf("through barrier: %.1f%%   (paper: 91%%)\n", thru*100)
	return nil
}

func runROCFigures(kinds []attack.Kind, cfg eval.FigureConfig) error {
	for _, kind := range kinds {
		title := fmt.Sprintf("Figure 9 (%s)", kind)
		if kind == attack.HiddenVoice {
			title = "Figure 10 (hidden voice attack)"
		}
		header(title)
		sums, err := eval.Figure9(kind, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %8s %8s %10s\n", "detector", "AUC", "EER", "threshold")
		for _, s := range sums {
			fmt.Printf("%-28s %8.3f %7.1f%% %10.2f\n", s.Name, s.AUC, s.EER*100, s.EERThreshold)
		}
	}
	return nil
}

func runAttackCorpus(cfg eval.FigureConfig) error {
	header("Attack corpus: full system vs every attack kind (holds/degrades/breaks)")
	rows, err := eval.AttackCorpus(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-24s %8s %8s %10s\n", "attack", "EER", "AUC", "verdict")
	for _, r := range rows {
		fmt.Printf("%-24s %7.1f%% %8.3f %10s\n", r.Kind, r.EER*100, r.AUC, r.Verdict)
	}
	return nil
}

func runFigure11(title string, gen func(eval.FigureConfig) ([]eval.EERCell, error), cfg eval.FigureConfig) error {
	header(title)
	cells, err := gen(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-28s %-22s %8s\n", "setting", "detector", "attack", "EER")
	for _, c := range cells {
		fmt.Printf("%-10s %-28s %-22s %7.1f%%\n", c.Label, c.Method, c.Attack, c.EER*100)
	}
	return nil
}
