// Command benchstream measures time-to-verdict for the streaming
// detection pipeline against the batch pipeline on the production
// arrangement — a trained BRNN phoneme segmenter over simulated acoustic
// scenarios, the same defense the serve tier runs — and writes the
// results as JSON. `make bench-stream` uses it to regenerate the
// checked-in BENCH_stream.json baseline (the cmd/benchdsp arrangement).
//
// Both arms are measured against paced audio arrival — a recording takes
// its own duration (scaled by -pace) to exist, because a microphone
// cannot be read faster than real time:
//
//   - The batch arm cannot start until the whole recording has arrived,
//     so its time-to-verdict is the paced recording duration plus the
//     measured Defense.Inspect wall time. No sleeping is needed to know
//     the arrival time; only the inspection is timed.
//   - The stream arm feeds the recording chunk by chunk, sleeping each
//     chunk's paced duration before it arrives, and stops the clock the
//     moment the inspector returns a verdict — before the recording ends
//     whenever the early exit fires. If no early exit fires the fallback
//     runs at stream close, which costs the batch arm plus overhead.
//
// Every streamed verdict is cross-checked against the batch verdict of
// the same seeded session; a flip fails the run. Runs are replayable
// from -seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"vibguard"
	"vibguard/internal/acoustics"
	"vibguard/internal/core"
	"vibguard/internal/device"
)

type session struct {
	label  string
	legit  bool
	va     []float64
	wear   []float64
	rngSes int64
}

type sessionResult struct {
	Label       string  `json:"label"`
	Legit       bool    `json:"legit"`
	DurationMs  float64 `json:"duration_ms"`
	BatchMs     float64 `json:"batch_ms"`
	StreamMs    float64 `json:"stream_ms"`
	Early       bool    `json:"early"`
	ConsumedPct float64 `json:"consumed_pct"`
}

type armSummary struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
}

type report struct {
	GOOS          string          `json:"goos"`
	GOARCH        string          `json:"goarch"`
	NumCPU        int             `json:"num_cpu"`
	Pace          float64         `json:"pace"`
	ChunkMs       int             `json:"chunk_ms"`
	Sessions      int             `json:"sessions"`
	LegitSessions int             `json:"legit_sessions"`
	EarlyExits    int             `json:"early_exits"`
	VerdictFlips  int             `json:"verdict_flips"`
	BatchLegit    armSummary      `json:"batch_legit"`
	StreamLegit   armSummary      `json:"stream_legit"`
	BatchAll      armSummary      `json:"batch_all"`
	StreamAll     armSummary      `json:"stream_all"`
	SpeedupP50    float64         `json:"speedup_p50_legit"`
	SpeedupP50All float64         `json:"speedup_p50_all"`
	Results       []sessionResult `json:"results"`
}

func main() {
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	seed := flag.Int64("seed", 2026, "corpus and session RNG seed")
	pace := flag.Float64("pace", 1.0, "audio arrival pace: 1.0 = real time, 0.1 = 10x faster than real time")
	chunkMs := flag.Int("chunk-ms", 100, "streamed chunk duration in milliseconds")
	voices := flag.Int("voices", 2, "speakers in the corpus")
	commands := flag.Int("commands", 3, "commands per speaker (each heard legitimately and as a thru-barrier replay)")
	flag.Parse()

	if err := run(*out, *seed, *pace, *chunkMs, *voices, *commands); err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
}

// buildCorpus synthesizes the session corpus: for each speaker and
// command, the legitimate acoustic path (direct speech, wearable on the
// wrist) and the thru-barrier replay path, each wearable recording
// shifted by its own seeded network delay — the -serve fleet scenario.
func buildCorpus(rng *rand.Rand, voices, commands int) ([]*session, error) {
	pool := vibguard.NewVoicePool(voices, rng.Int63())
	room := vibguard.Rooms()[0]
	cmds := vibguard.Commands()
	var sessions []*session
	for _, voice := range pool {
		synth, err := vibguard.NewSynthesizer(voice)
		if err != nil {
			return nil, err
		}
		for c := 0; c < commands && c < len(cmds); c++ {
			utt, err := synth.Synthesize(cmds[c])
			if err != nil {
				return nil, err
			}
			transmit := func(spl, dist float64, thru bool) ([]float64, error) {
				return room.Transmit(utt.Samples, acoustics.PathConfig{
					SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru,
					SampleRate: vibguard.SampleRate,
				}, rng)
			}
			type path struct {
				label       string
				legit       bool
				spl, vaDist float64
				wearDist    float64
				thru        bool
			}
			for _, p := range []path{
				{"legit", true, 72, 1.5, 0.3, false},
				{"replay", false, 80, 2.1, 2.4, true},
			} {
				va, err := transmit(p.spl, p.vaDist, p.thru)
				if err != nil {
					return nil, err
				}
				near, err := transmit(p.spl, p.wearDist, p.thru)
				if err != nil {
					return nil, err
				}
				wear := vibguard.SimulateNetworkDelay(near, 0.05+rng.Float64()*0.1, rng)
				sessions = append(sessions, &session{
					label: p.label, legit: p.legit, va: va, wear: wear,
				})
			}
		}
	}
	return sessions, nil
}

func run(out string, seed int64, pace float64, chunkMs, voices, commands int) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Fprintln(os.Stderr, "benchstream: training phoneme detector")
	det, err := vibguard.TrainPhonemeDetector(vibguard.DetectorTraining{Seed: rng.Int63()})
	if err != nil {
		return err
	}
	defense, err := core.NewDefense(core.DefaultConfig(device.NewFossilGen5(), vibguard.BRNNSegmenter(det)))
	if err != nil {
		return err
	}
	sessions, err := buildCorpus(rng, voices, commands)
	if err != nil {
		return err
	}
	chunkSamples := chunkMs * int(vibguard.SampleRate) / 1000
	if chunkSamples < 1 {
		chunkSamples = 1
	}
	rep := report{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU(),
		Pace: pace, ChunkMs: chunkMs, Sessions: len(sessions),
	}
	for i, s := range sessions {
		s.rngSes = seed + int64(i)
		durMs := float64(len(s.va)) / vibguard.SampleRate * 1000

		// Batch arm: arrival (paced duration) + measured Inspect time.
		t0 := time.Now()
		bv, err := defense.Inspect(s.va, s.wear, rand.New(rand.NewSource(s.rngSes)))
		if err != nil {
			return fmt.Errorf("%s: batch: %w", s.label, err)
		}
		batchMs := durMs*pace + float64(time.Since(t0).Nanoseconds())/1e6

		// Stream arm: paced chunks, clock stops at the verdict.
		sv, streamMs, err := streamSession(defense, s, chunkSamples, pace)
		if err != nil {
			return fmt.Errorf("%s: stream: %w", s.label, err)
		}

		if s.legit {
			rep.LegitSessions++
		}
		if sv.Early {
			rep.EarlyExits++
		}
		if sv.Attack != bv.Attack {
			rep.VerdictFlips++
			fmt.Fprintf(os.Stderr, "benchstream: VERDICT FLIP %s: stream attack=%v batch attack=%v\n",
				s.label, sv.Attack, bv.Attack)
		}
		rep.Results = append(rep.Results, sessionResult{
			Label: s.label, Legit: s.legit, DurationMs: durMs,
			BatchMs: batchMs, StreamMs: streamMs, Early: sv.Early,
			ConsumedPct: 100 * float64(sv.Consumed) / float64(len(s.va)),
		})
		fmt.Fprintf(os.Stderr, "%-8s dur=%6.0fms batch=%6.0fms stream=%6.0fms early=%-5v consumed=%5.1f%%\n",
			s.label, durMs, batchMs, streamMs, sv.Early, 100*float64(sv.Consumed)/float64(len(s.va)))
	}

	pick := func(legitOnly, stream bool) []float64 {
		var xs []float64
		for _, r := range rep.Results {
			if legitOnly && !r.Legit {
				continue
			}
			if stream {
				xs = append(xs, r.StreamMs)
			} else {
				xs = append(xs, r.BatchMs)
			}
		}
		return xs
	}
	rep.BatchLegit = summarize(pick(true, false))
	rep.StreamLegit = summarize(pick(true, true))
	rep.BatchAll = summarize(pick(false, false))
	rep.StreamAll = summarize(pick(false, true))
	if rep.StreamLegit.P50Ms > 0 {
		rep.SpeedupP50 = rep.BatchLegit.P50Ms / rep.StreamLegit.P50Ms
	}
	if rep.StreamAll.P50Ms > 0 {
		rep.SpeedupP50All = rep.BatchAll.P50Ms / rep.StreamAll.P50Ms
	}
	fmt.Fprintf(os.Stderr, "legit p50: batch %.0fms stream %.0fms (%.2fx)  all p50: batch %.0fms stream %.0fms (%.2fx)  early %d/%d flips %d\n",
		rep.BatchLegit.P50Ms, rep.StreamLegit.P50Ms, rep.SpeedupP50,
		rep.BatchAll.P50Ms, rep.StreamAll.P50Ms, rep.SpeedupP50All,
		rep.EarlyExits, rep.Sessions, rep.VerdictFlips)
	if rep.VerdictFlips > 0 {
		return fmt.Errorf("%d streamed verdicts diverged from batch", rep.VerdictFlips)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(out, data, 0o644)
}

// streamSession feeds one session through a StreamInspector with paced
// chunk arrival and returns the verdict and the wall-clock milliseconds
// from session start to verdict.
func streamSession(d *core.Defense, s *session, chunkSamples int, pace float64) (*core.Verdict, float64, error) {
	si, err := d.NewStreamInspector(core.StreamConfig{}, s.rngSes)
	if err != nil {
		return nil, 0, err
	}
	if err := si.FeedWearable(s.wear); err != nil {
		return nil, 0, err
	}
	sampleDur := pace * float64(time.Second) / vibguard.SampleRate
	t0 := time.Now()
	var verdict *core.Verdict
	for lo := 0; lo < len(s.va); lo += chunkSamples {
		hi := lo + chunkSamples
		if hi > len(s.va) {
			hi = len(s.va)
		}
		// The chunk takes its own duration to arrive.
		time.Sleep(time.Duration(float64(hi-lo) * sampleDur))
		v, err := si.Feed(s.va[lo:hi])
		if err != nil {
			return nil, 0, err
		}
		if v != nil {
			verdict = v
			break
		}
	}
	if verdict == nil {
		v, err := si.Finish()
		if err != nil {
			return nil, 0, err
		}
		verdict = v
	}
	return verdict, float64(time.Since(t0).Nanoseconds()) / 1e6, nil
}

// summarize returns the p50/p90 of xs (nearest-rank).
func summarize(xs []float64) armSummary {
	if len(xs) == 0 {
		return armSummary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return armSummary{P50Ms: rank(0.50), P90Ms: rank(0.90)}
}
