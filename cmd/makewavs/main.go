// Command makewavs exports listenable WAV files of the simulation: a
// synthesized voice command, its four attack renditions, the in-room
// recordings with and without the barrier, and the wearable's vibration
// capture (resampled up so it is audible).
//
// Usage:
//
//	makewavs [-dir out] [-cmd "turn on the lights"]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"vibguard"
	"vibguard/internal/dsp"
	"vibguard/internal/wavio"
)

func main() {
	dir := flag.String("dir", "wavs", "output directory")
	cmdText := flag.String("cmd", "turn on the lights", "command to render")
	flag.Parse()
	if err := run(*dir, *cmdText); err != nil {
		fmt.Fprintln(os.Stderr, "makewavs:", err)
		os.Exit(1)
	}
}

func run(dir, cmdText string) error {
	var cmd vibguard.Command
	found := false
	for _, c := range vibguard.Commands() {
		if c.Text == cmdText {
			cmd, found = c, true
		}
	}
	if !found {
		return fmt.Errorf("unknown command %q (see vibguard.Commands())", cmdText)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(42))
	voice := vibguard.NewVoicePool(1, 42)[0]
	synth, err := vibguard.NewSynthesizer(voice)
	if err != nil {
		return err
	}
	utt, err := synth.Synthesize(cmd)
	if err != nil {
		return err
	}
	attacker := vibguard.NewAttacker(7)
	room := vibguard.Rooms()[0]

	save := func(name string, samples []float64, rate int) error {
		// Normalize for comfortable playback.
		peak := dsp.MaxAbs(samples)
		if peak > 0 {
			samples = dsp.Scale(samples, 0.8/peak)
		}
		path := filepath.Join(dir, name)
		if err := wavio.WriteFile(path, samples, rate); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	if err := save("command_clean.wav", utt.Samples, int(vibguard.SampleRate)); err != nil {
		return err
	}
	replayed, err := attacker.ReplayAttack(utt.Samples)
	if err != nil {
		return err
	}
	if err := save("attack_replay.wav", replayed, int(vibguard.SampleRate)); err != nil {
		return err
	}
	hidden, err := attacker.HiddenVoiceAttack(utt.Samples)
	if err != nil {
		return err
	}
	if err := save("attack_hidden.wav", hidden, int(vibguard.SampleRate)); err != nil {
		return err
	}

	direct, err := room.Transmit(utt.Samples, vibguard.PathConfig{
		SourceSPL: 72, DistanceM: 1.5, SampleRate: vibguard.SampleRate,
	}, rng)
	if err != nil {
		return err
	}
	if err := save("recording_in_room.wav", direct, int(vibguard.SampleRate)); err != nil {
		return err
	}
	thru, err := room.Transmit(replayed, vibguard.PathConfig{
		SourceSPL: 75, DistanceM: 2.1, ThroughBarrier: true, SampleRate: vibguard.SampleRate,
	}, rng)
	if err != nil {
		return err
	}
	if err := save("recording_thru_barrier.wav", thru, int(vibguard.SampleRate)); err != nil {
		return err
	}

	// The wearable's vibration captures, resampled to 8 kHz so the 0-100Hz
	// band is audible as a low rumble.
	wearable := vibguard.NewFossilGen5()
	for name, rec := range map[string][]float64{
		"vibration_legit.wav":  direct,
		"vibration_attack.wav": thru,
	} {
		vib, err := wearable.SenseVibration(rec, rng)
		if err != nil {
			return err
		}
		audible, err := dsp.Resample(vib, vibguard.AccelSampleRate, 8000)
		if err != nil {
			return err
		}
		if err := save(name, audible, 8000); err != nil {
			return err
		}
	}
	return nil
}
