// Command benchbrnn runs the shared BRNN inference benchmark kernels (see
// internal/brnn/brnnbench) through testing.Benchmark and writes the
// results as JSON. `make bench-brnn` uses it to regenerate the checked-in
// BENCH_brnn.json baseline, giving future PRs a perf trajectory for the
// batched inference kernels without parsing `go test -bench` text output —
// the same arrangement as cmd/benchdsp for the FFT engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"vibguard/internal/brnn/brnnbench"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON to this file instead of stdout")
	flag.Parse()

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, c := range brnnbench.Cases() {
		name := c.Group + "/" + c.Name
		r := testing.Benchmark(c.Fn)
		rep.Benchmarks = append(rep.Benchmarks, result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Fprintf(os.Stderr, "%-36s %14.0f ns/op %8d B/op %6d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbrnn:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchbrnn:", err)
		os.Exit(1)
	}
}
