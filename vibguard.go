// Package vibguard is a reproduction of "Defending against Thru-barrier
// Stealthy Voice Attacks via Cross-Domain Sensing on Phoneme Sounds"
// (Shi et al., ICDCS 2022): a training-free defense that protects voice
// assistant (VA) systems against attackers hiding behind barriers.
//
// The defense compares a voice command as recorded by the VA device and by
// the user's wearable. Both recordings are replayed on the wearable's
// built-in speaker and captured by its accelerometer (cross-domain
// sensing); thru-barrier attack sound, stripped of its high frequencies by
// the barrier, becomes noisy in the vibration domain and fails a
// 2D-correlation similarity test, while a legitimate in-room command
// passes.
//
// The package is a facade over the internal implementation: phoneme
// synthesis (a stand-in for the TIMIT corpus), room/barrier acoustics,
// device models (microphones, loudspeakers, smartwatch accelerometers, VA
// products), the BRNN phoneme detector, the offline barrier-effect
// phoneme selection, cross-device synchronization over real sockets, the
// four attack generators, and the full evaluation harness that
// regenerates every table and figure of the paper. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	defense, err := vibguard.NewDefense(vibguard.Options{})
//	...
//	verdict, err := defense.Inspect(vaRecording, wearableRecording, rng)
//	if verdict.Attack {
//	    // reject the voice command
//	}
package vibguard

import (
	"fmt"
	"io"
	"math/rand"

	"vibguard/internal/acoustics"
	"vibguard/internal/attack"
	"vibguard/internal/brnn"
	"vibguard/internal/core"
	"vibguard/internal/detector"
	"vibguard/internal/device"
	"vibguard/internal/eval"
	"vibguard/internal/phoneme"
	"vibguard/internal/segment"
	"vibguard/internal/selection"
	"vibguard/internal/syncnet"
	"vibguard/internal/wavio"
)

// SampleRate is the audio sampling rate used throughout (16 kHz).
const SampleRate = phoneme.SampleRate

// AccelSampleRate is the wearable accelerometer's sampling rate (200 Hz).
const AccelSampleRate = device.AccelSampleRate

// Core pipeline types.
type (
	// Defense is the end-to-end thru-barrier attack detection pipeline.
	Defense = core.Defense
	// Verdict is the outcome of inspecting one voice command.
	Verdict = core.Verdict
	// DefenseConfig parameterizes the pipeline.
	DefenseConfig = core.Config
	// Method selects a detector variant (full system or a baseline).
	Method = detector.Method
	// Segmenter provides effective-phoneme spans for a VA recording.
	Segmenter = detector.Segmenter
	// Span is a half-open sample range of effective-phoneme audio.
	Span = segment.Span
	// PhonemeDetector is the BRNN-based effective-phoneme detector.
	PhonemeDetector = segment.Detector
)

// Detector methods.
const (
	// MethodAudio is the audio-domain baseline (high-frequency energy
	// check) the paper compares against.
	MethodAudio = detector.MethodAudio
	// MethodVibration is cross-domain sensing without phoneme selection.
	MethodVibration = detector.MethodVibration
	// MethodFull is the proposed system.
	MethodFull = detector.MethodFull
)

// Device models.
type (
	// Wearable models a smartwatch (mic + speaker + accelerometer).
	Wearable = device.Wearable
	// VADevice models a voice assistant product with wake-word detection.
	VADevice = device.VADevice
	// Microphone, Loudspeaker, and Accelerometer are device components.
	Microphone    = device.Microphone
	Loudspeaker   = device.Loudspeaker
	Accelerometer = device.Accelerometer
)

// Speech synthesis (the TIMIT-corpus stand-in).
type (
	// VoiceProfile parameterizes one simulated speaker.
	VoiceProfile = phoneme.VoiceProfile
	// Synthesizer renders phonemes and commands for one speaker.
	Synthesizer = phoneme.Synthesizer
	// Command is a VA voice command with a phonetic transcription.
	Command = phoneme.Command
	// Utterance is a synthesized command with time-aligned phonemes.
	Utterance = phoneme.Utterance
	// PhonemeSpec describes one phoneme of the 37-phoneme inventory.
	PhonemeSpec = phoneme.Spec
)

// Acoustics.
type (
	// Room is one evaluation environment with a barrier.
	Room = acoustics.Room
	// Barrier is a wall/window/door with frequency-selective attenuation.
	Barrier = acoustics.Barrier
	// PathConfig describes a source-to-receiver acoustic path.
	PathConfig = acoustics.PathConfig
)

// Attacks and evaluation.
type (
	// Attacker generates the four thru-barrier attack types.
	Attacker = attack.Attacker
	// AttackKind identifies an attack type.
	AttackKind = attack.Kind
	// Summary bundles AUC/EER metrics of one experiment arm.
	Summary = eval.Summary
	// ROC is a receiver operating characteristic curve.
	ROC = eval.ROC
	// SelectionResult is the outcome of the offline phoneme selection.
	SelectionResult = selection.Result
)

// Attack kinds.
const (
	AttackRandom      = attack.Random
	AttackReplay      = attack.Replay
	AttackSynthesis   = attack.Synthesis
	AttackHiddenVoice = attack.HiddenVoice
)

// NewFossilGen5 returns the Fossil Gen 5 smartwatch model used in most of
// the paper's experiments.
func NewFossilGen5() *Wearable { return device.NewFossilGen5() }

// NewMoto360 returns the Moto 360 (2020) smartwatch model.
func NewMoto360() *Wearable { return device.NewMoto360() }

// VADevices returns the four VA device models of the Table I study.
func VADevices() []*VADevice { return device.AllVADevices() }

// Rooms returns the four room environments (A-D) of the evaluation.
func Rooms() []Room { return acoustics.Rooms() }

// Commands returns the 20-command corpus used by the evaluation.
func Commands() []Command { return phoneme.Commands() }

// WakeWords returns the wake-word commands ("ok google", "alexa",
// "hey siri").
func WakeWords() []Command { return phoneme.WakeWords() }

// NewVoicePool deterministically generates n speaker profiles.
func NewVoicePool(n int, seed int64) []VoiceProfile { return phoneme.NewVoicePool(n, seed) }

// NewSynthesizer creates a speech synthesizer for a voice profile.
func NewSynthesizer(p VoiceProfile) (*Synthesizer, error) { return phoneme.NewSynthesizer(p) }

// NewAttacker creates an attack generator.
func NewAttacker(seed int64) *Attacker { return attack.NewAttacker(seed) }

// SelectedPhonemes returns the 31 barrier-effect-sensitive phonemes
// identified by the offline selection study (Section V-A).
func SelectedPhonemes() map[string]bool { return selection.CanonicalSelected() }

// RunPhonemeSelection executes the offline phoneme-selection study with
// the paper's default setup and returns the per-phoneme statistics.
func RunPhonemeSelection() (*SelectionResult, error) {
	return selection.Run(selection.DefaultConfig())
}

// AlignRecordings removes the network-delay offset of the wearable
// recording relative to the VA recording using the cross-correlation of
// Eq. (5). It returns the aligned wearable recording and the estimated
// offset in samples.
func AlignRecordings(vaRec, wearRec []float64, maxLagSeconds float64) ([]float64, int, error) {
	return syncnet.AlignRecordings(vaRec, wearRec, maxLagSeconds, SampleRate)
}

// Options configures NewDefense.
type Options struct {
	// Wearable performs cross-domain sensing. Defaults to a Fossil Gen 5.
	Wearable *Wearable
	// Method selects the detector. Defaults to MethodFull.
	Method Method
	// Segmenter provides effective-phoneme spans. Defaults to a freshly
	// trained BRNN phoneme detector (see TrainPhonemeDetector); supply
	// your own to reuse a trained model.
	Segmenter Segmenter
	// Threshold on the correlation score. Defaults to the calibrated
	// equal-error threshold.
	Threshold float64
	// TrainSeed drives the default detector's training.
	TrainSeed int64
}

// NewDefense builds the full detection pipeline. With a zero Options
// value it uses a Fossil Gen 5 wearable, trains the BRNN phoneme detector
// on synthetic studio speech (a few seconds of CPU time), and applies the
// paper's default parameters.
func NewDefense(opts Options) (*Defense, error) {
	if opts.Wearable == nil {
		opts.Wearable = NewFossilGen5()
	}
	if opts.Method == 0 {
		opts.Method = MethodFull
	}
	if opts.Segmenter == nil && opts.Method == MethodFull {
		det, err := TrainPhonemeDetector(DetectorTraining{Seed: opts.TrainSeed})
		if err != nil {
			return nil, err
		}
		opts.Segmenter = &detector.BRNNSegmenter{Detector: det}
	}
	cfg := core.DefaultConfig(opts.Wearable, opts.Segmenter)
	cfg.Method = opts.Method
	if opts.Threshold != 0 {
		cfg.Threshold = opts.Threshold
	}
	return core.NewDefense(cfg)
}

// DetectorTraining sizes the BRNN phoneme-detector training.
type DetectorTraining struct {
	// HiddenDim is the LSTM width (default 32; the paper uses 64, which
	// is slower to train but slightly more accurate).
	HiddenDim int
	// Voices and CommandsPerVoice size the synthetic training corpus
	// (defaults 3 and 8).
	Voices, CommandsPerVoice int
	// Epochs over the corpus (default 5).
	Epochs int
	// Seed drives initialization and data generation.
	Seed int64
}

// TrainPhonemeDetector trains the effective-phoneme BRNN on synthetic
// studio speech and returns it ready for use as a Segmenter.
func TrainPhonemeDetector(cfg DetectorTraining) (*PhonemeDetector, error) {
	if cfg.HiddenDim == 0 {
		cfg.HiddenDim = 32
	}
	if cfg.Voices == 0 {
		cfg.Voices = 3
	}
	if cfg.CommandsPerVoice == 0 {
		cfg.CommandsPerVoice = 8
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	det, err := segment.NewDetector(selection.CanonicalSelected(), brnn.Config{
		InputDim: 14, HiddenDim: cfg.HiddenDim, NumClasses: 2, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("vibguard: %w", err)
	}
	voices := phoneme.NewStudioVoicePool(cfg.Voices, cfg.Seed+5)
	cmds := phoneme.Commands()
	if cfg.CommandsPerVoice > len(cmds) {
		cfg.CommandsPerVoice = len(cmds)
	}
	var utts []*phoneme.Utterance
	for _, v := range voices {
		synth, err := phoneme.NewSynthesizer(v)
		if err != nil {
			return nil, fmt.Errorf("vibguard: %w", err)
		}
		for _, cmd := range cmds[:cfg.CommandsPerVoice] {
			u, err := synth.Synthesize(cmd)
			if err != nil {
				return nil, fmt.Errorf("vibguard: %w", err)
			}
			utts = append(utts, u)
		}
	}
	if _, err := det.Train(utts, brnn.TrainConfig{
		Epochs: cfg.Epochs, LearningRate: 0.006, ClipNorm: 5, Seed: cfg.Seed,
	}); err != nil {
		return nil, fmt.Errorf("vibguard: %w", err)
	}
	return det, nil
}

// StaticSegmenter wraps precomputed spans as a Segmenter, for controlled
// experiments with ground-truth alignments.
func StaticSegmenter(spans []Span) Segmenter {
	return &detector.StaticSegmenter{Spans: spans}
}

// OracleSpans returns the ground-truth effective-phoneme spans of an
// utterance.
func OracleSpans(utt *Utterance, selected map[string]bool) []Span {
	return segment.OracleSpans(utt, selected)
}

// Simulate convenience re-exports for building scenarios.

// SimulateNetworkDelay prepends the wearable's network-delay lead to a
// recording.
func SimulateNetworkDelay(rec []float64, delaySeconds float64, rng *rand.Rand) []float64 {
	return syncnet.SimulateNetworkDelay(rec, delaySeconds, SampleRate, rng)
}

// LoadPhonemeDetector restores a phoneme detector serialized with
// (*PhonemeDetector).Save, so a trained model can be reused across runs.
func LoadPhonemeDetector(r io.Reader) (*PhonemeDetector, error) {
	return segment.Load(r)
}

// WriteWAV writes samples in [-1, 1] as a mono 16-bit PCM WAV file.
func WriteWAV(path string, samples []float64, sampleRate int) error {
	return wavio.WriteFile(path, samples, sampleRate)
}

// ReadWAV reads a mono 16-bit PCM WAV file.
func ReadWAV(path string) (samples []float64, sampleRate int, err error) {
	return wavio.ReadFile(path)
}

// BRNNSegmenter wraps a trained phoneme detector as a Segmenter for
// NewDefense.
func BRNNSegmenter(det *PhonemeDetector) Segmenter {
	return &detector.BRNNSegmenter{Detector: det}
}
