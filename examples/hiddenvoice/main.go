// Hiddenvoice: a closer look at the stealthiest attack. The obfuscated
// command is unintelligible to humans but spans 0-6 kHz, which makes the
// barrier's frequency selectivity even more visible to the defense
// (Section VII-C). This example measures the obfuscation's bandwidth,
// whether it still wakes the VA, and how the defense scores it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vibguard"
	"vibguard/internal/attack"
	"vibguard/internal/device"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	victim := vibguard.NewVoicePool(1, 9)[0]
	synth, err := vibguard.NewSynthesizer(victim)
	if err != nil {
		log.Fatal(err)
	}
	wake := vibguard.WakeWords()[0] // "ok google"
	utt, err := synth.Synthesize(wake)
	if err != nil {
		log.Fatal(err)
	}
	attacker := vibguard.NewAttacker(2)
	hidden, err := attacker.HiddenVoiceAttack(utt.Samples)
	if err != nil {
		log.Fatal(err)
	}

	clearBW := attack.Bandwidth(utt.Samples, vibguard.SampleRate, 0.95)
	hiddenBW := attack.Bandwidth(hidden, vibguard.SampleRate, 0.95)
	fmt.Printf("clear command 95%% bandwidth:  %6.0f Hz\n", clearBW)
	fmt.Printf("hidden command 95%% bandwidth: %6.0f Hz\n", hiddenBW)

	// Does the obfuscated command still trigger the VA through the window?
	room := vibguard.Rooms()[0]
	googleHome := device.NewGoogleHome()
	wakes := 0
	const attempts = 10
	for i := 0; i < attempts; i++ {
		lead := make([]float64, int(0.3*vibguard.SampleRate))
		padded := append(append(append([]float64{}, lead...), hidden...), lead...)
		pressure, err := room.Transmit(padded, vibguard.PathConfig{
			SourceSPL: 75, DistanceM: 2.1, ThroughBarrier: true,
			SampleRate: vibguard.SampleRate,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := googleHome.Record(pressure, rng)
		if err != nil {
			log.Fatal(err)
		}
		if googleHome.TryWake(rec, rng) {
			wakes++
		}
	}
	fmt.Printf("wake-word success thru barrier at 75dB: %d/%d\n", wakes, attempts)

	// And the defense's verdict on the full hidden command.
	defense, err := vibguard.NewDefense(vibguard.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cmdUtt, err := synth.Synthesize(vibguard.Commands()[7]) // "unlock the door"
	if err != nil {
		log.Fatal(err)
	}
	hiddenCmd, err := attacker.HiddenVoiceAttack(cmdUtt.Samples)
	if err != nil {
		log.Fatal(err)
	}
	transmit := func(dist float64) []float64 {
		p, err := room.Transmit(hiddenCmd, vibguard.PathConfig{
			SourceSPL: 75, DistanceM: dist, ThroughBarrier: true,
			SampleRate: vibguard.SampleRate,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	va := transmit(2.1)
	wear := vibguard.SimulateNetworkDelay(transmit(2.4), 0.1, rng)
	verdict, err := defense.Inspect(va, wear, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defense verdict on hidden 'unlock the door': score=%+.3f attack=%v\n",
		verdict.Score, verdict.Attack)
}
