// Quickstart: build the defense, record one legitimate command and one
// thru-barrier replay attack, and inspect both.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vibguard"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// 1. The user speaks a command in Room A (glass window barrier).
	user := vibguard.NewVoicePool(1, 1)[0]
	synth, err := vibguard.NewSynthesizer(user)
	if err != nil {
		log.Fatal(err)
	}
	utt, err := synth.Synthesize(vibguard.Commands()[0]) // "turn on the lights"
	if err != nil {
		log.Fatal(err)
	}
	room := vibguard.Rooms()[0]

	record := func(spl, distance float64, throughBarrier bool) []float64 {
		pressure, err := room.Transmit(utt.Samples, vibguard.PathConfig{
			SourceSPL:      spl,
			DistanceM:      distance,
			ThroughBarrier: throughBarrier,
			SampleRate:     vibguard.SampleRate,
		}, rng)
		if err != nil {
			log.Fatal(err)
		}
		return pressure
	}

	// The VA device is 1.5m away; the wearable is on the user's wrist.
	// The wearable recording carries a ~100ms network-delay lead that the
	// defense removes via cross-correlation.
	legitVA := record(72, 1.5, false)
	legitWear := vibguard.SimulateNetworkDelay(record(72, 0.3, false), 0.1, rng)

	// 2. An adversary replays the same command from behind the window.
	attackVA := record(80, 2.1, true)
	attackWear := vibguard.SimulateNetworkDelay(record(80, 2.4, true), 0.08, rng)

	// 3. Build the defense. The zero-value Options train the BRNN phoneme
	// detector on synthetic speech (a few seconds).
	defense, err := vibguard.NewDefense(vibguard.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect both commands.
	for _, c := range []struct {
		name     string
		va, wear []float64
	}{
		{"legitimate command", legitVA, legitWear},
		{"thru-barrier attack", attackVA, attackWear},
	} {
		verdict, err := defense.Inspect(c.va, c.wear, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s correlation=%+.3f attack=%v\n", c.name, verdict.Score, verdict.Attack)
	}
}
