// Smarthome: the paper's motivating scenario. A smart lock in an
// apartment accepts voice commands; an adversary behind the window tries
// all four attack types at three volumes to unlock the door. The defense
// guards the VA with cross-domain sensing.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"vibguard"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	room := vibguard.Rooms()[0] // apartment, glass window
	victim := vibguard.NewVoicePool(6, 3)[0]
	adversary := vibguard.NewVoicePool(6, 3)[5]
	attacker := vibguard.NewAttacker(11)

	// The target command the adversary wants to inject.
	var unlock vibguard.Command
	for _, c := range vibguard.Commands() {
		if c.Text == "unlock the door" {
			unlock = c
		}
	}

	fmt.Println("Smart-lock scenario: apartment (Room A), glass window barrier")
	fmt.Println("Defense: cross-domain sensing on the victim's Fossil Gen 5")
	fmt.Println()

	defense, err := vibguard.NewDefense(vibguard.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the victim's own unlock command must be accepted.
	victimSynth, err := vibguard.NewSynthesizer(victim)
	if err != nil {
		log.Fatal(err)
	}
	victimUtt, err := victimSynth.Synthesize(unlock)
	if err != nil {
		log.Fatal(err)
	}
	inspect := func(source []float64, spl, vaDist, wearDist float64, thru bool) *vibguard.Verdict {
		transmit := func(dist float64) []float64 {
			p, err := room.Transmit(source, vibguard.PathConfig{
				SourceSPL: spl, DistanceM: dist, ThroughBarrier: thru,
				SampleRate: vibguard.SampleRate,
			}, rng)
			if err != nil {
				log.Fatal(err)
			}
			return p
		}
		va := transmit(vaDist)
		wear := vibguard.SimulateNetworkDelay(transmit(wearDist), 0.05+rng.Float64()*0.1, rng)
		verdict, err := defense.Inspect(va, wear, rng)
		if err != nil {
			log.Fatal(err)
		}
		return verdict
	}

	v := inspect(victimUtt.Samples, 70, 1.5, 0.3, false)
	fmt.Printf("%-28s %6s  score=%+.3f -> %s\n", "victim says it in the room", "70dB", v.Score, decision(v))
	fmt.Println()

	// Attacks: build each attack sound, then play it behind the window.
	victimSamples := [][]float64{victimUtt.Samples}
	attacks := []struct {
		kind  vibguard.AttackKind
		build func() ([]float64, error)
	}{
		{vibguard.AttackRandom, func() ([]float64, error) {
			adv := adversary
			adv.Seed = rng.Int63()
			return attacker.RandomAttack(adv, unlock)
		}},
		{vibguard.AttackReplay, func() ([]float64, error) {
			return attacker.ReplayAttack(victimUtt.Samples)
		}},
		{vibguard.AttackSynthesis, func() ([]float64, error) {
			return attacker.SynthesisAttack(victimSamples, unlock)
		}},
		{vibguard.AttackHiddenVoice, func() ([]float64, error) {
			return attacker.HiddenVoiceAttack(victimUtt.Samples)
		}},
	}
	blocked, total := 0, 0
	for _, a := range attacks {
		for _, spl := range []float64{65, 75, 85} {
			audio, err := a.build()
			if err != nil {
				log.Fatal(err)
			}
			verdict := inspect(audio, spl, 2.1, 2.4, true)
			total++
			if verdict.Attack {
				blocked++
			}
			fmt.Printf("%-28s %4.0fdB  score=%+.3f -> %s\n", a.kind, spl, verdict.Score, decision(verdict))
		}
	}
	fmt.Printf("\nblocked %d of %d thru-barrier attack attempts\n", blocked, total)
}

func decision(v *vibguard.Verdict) string {
	if v.Attack {
		return "REJECTED"
	}
	return "door unlocked"
}
