// Selection: run the offline barrier-effect-sensitive phoneme selection
// (Section V-A) through the public API and show how each phoneme fares
// against the two criteria.
package main

import (
	"fmt"
	"log"

	"vibguard"
)

func main() {
	fmt.Println("Running the offline phoneme-selection study (Section V-A)...")
	res, err := vibguard.RunPhonemeSelection()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("threshold alpha = %.4f\n\n", res.Alpha)
	fmt.Printf("%-4s %12s %12s  %s\n", "sym", "maxQ3(adv)", "minQ3(user)", "verdict")
	for sym, s := range res.Stats {
		verdict := "selected"
		switch {
		case !s.PassI:
			verdict = "excluded: still triggers the accelerometer through the barrier"
		case !s.PassII:
			verdict = "excluded: too weak to trigger the accelerometer at all"
		}
		fmt.Printf("%-4s %12.5f %12.5f  %s\n", sym, s.QAdvMax, s.QUserMin, verdict)
	}
	fmt.Printf("\n%d of 37 phonemes are barrier-effect sensitive:\n%v\n",
		len(res.Selected), res.Selected)

	// The canonical cached set matches the study.
	canonical := vibguard.SelectedPhonemes()
	mismatches := 0
	for _, sym := range res.Selected {
		if !canonical[sym] {
			mismatches++
		}
	}
	fmt.Printf("agreement with the cached canonical set: %d mismatches\n", mismatches)
}
